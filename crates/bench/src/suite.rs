//! The named micro-benchmark suite over SHIFT's hot paths.
//!
//! Unlike the Criterion targets under `benches/` (interactive, human-read),
//! this suite is the machine-facing half of the perf-regression subsystem:
//! it measures a fixed set of named hot paths and reduces each to one
//! [`TimingRow`], which [`snapshot`](crate::snapshot) serializes to
//! `BENCH_micro.json` and [`compare`](crate::compare) gates in CI.
//!
//! The benches mirror the operations the paper's "< 2 ms/frame
//! decision overhead" claim decomposes into, plus the two shared-resource
//! paths the fleet runtime added:
//!
//! | name | hot path |
//! |---|---|
//! | `confidence_graph/predict` | the per-frame accuracy map lookup |
//! | `scheduler/argmax` | the full Algorithm 1 re-scheduling pass |
//! | `ncc/context_detect` | the NCC context-similarity computation |
//! | `ncc/region` | the bbox-crop NCC through the reusable region scratch |
//! | `similarity/frame` | the stateless full-frame + crop similarity helper |
//! | `loader/lru_churn` | an LRU load + eviction cycle under memory pressure |
//! | `fleet/step` | one shared-SoC fleet scheduling step (3 streams) |
//! | `fleet/step_adversarial` | the same step over the worst-case fleet: the minimized hunt-corpus scenarios under a scripted fault plan |

use crate::{bench_characterization, bench_engine};
use shift_core::fleet::{FleetBuilder, FleetConfig, StreamSpec};
use shift_core::{
    CandidatePair, ConfidenceGraph, ContextDetector, DynamicModelLoader, GraphConfig, Scheduler,
    ShiftConfig,
};
use shift_metrics::TimingRow;
use shift_models::ModelId;
use shift_soc::{AcceleratorId, FaultPlan, FaultSpec};
use shift_video::Scenario;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// The suite's bench names, in run order. Stable: the CI gate keys on them.
pub const BENCH_NAMES: [&str; 8] = [
    "confidence_graph/predict",
    "scheduler/argmax",
    "ncc/context_detect",
    "ncc/region",
    "similarity/frame",
    "loader/lru_churn",
    "fleet/step",
    "fleet/step_adversarial",
];

/// The stream set and scripted fault plan behind `fleet/step_adversarial`.
///
/// `repro -- bench` derives one from the committed hunt regression corpus
/// (`tests/corpus/*.case`), so the gated number tracks the nastiest known
/// workloads; [`synthetic`](Self::synthetic) is the built-in fallback with
/// the same shape for contexts that cannot reach the corpus files.
#[derive(Debug, Clone)]
pub struct AdversarialFixture {
    /// Streams of the worst-case fleet.
    pub specs: Vec<StreamSpec>,
    /// The fault plan the fleet steps under, scripted over the fleet's
    /// tick clock (total frames admitted across streams).
    pub plan: FaultPlan,
}

impl AdversarialFixture {
    /// A corpus-shaped fallback: hard scenario presets under a mixed fault
    /// plan (dropouts + DVFS clamp + memory squeeze + telemetry glitches)
    /// spanning the whole run. Pure in `(seed, frames)`.
    pub fn synthetic(seed: u64, frames: usize) -> Self {
        let specs: Vec<StreamSpec> = [
            Scenario::scenario_2(),
            Scenario::scenario_4(),
            Scenario::scenario_6(),
        ]
        .into_iter()
        .enumerate()
        .map(|(i, scenario)| {
            StreamSpec::new(
                format!("adv-s{i}"),
                scenario.with_num_frames(frames),
                ShiftConfig::paper_defaults().with_accuracy_goal(0.2),
            )
        })
        .collect();
        let horizon = (frames * specs.len()) as u64;
        let plan = FaultPlan::generate(seed ^ 0xADE5, &FaultSpec::mixed(horizon));
        Self { specs, plan }
    }
}

/// Suite sizing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SuiteOptions {
    /// Timed batches per bench.
    pub samples: usize,
    /// Wall-clock budget per batch; the per-batch iteration count is
    /// calibrated so one batch roughly fills it.
    pub sample_budget: Duration,
    /// Characterization-set size for the graph/scheduler fixtures.
    pub characterization_samples: usize,
    /// Frames per stream in the fleet fixture.
    pub fleet_frames: usize,
}

impl SuiteOptions {
    /// Full fidelity: the mode for locally tracked numbers.
    pub fn full() -> Self {
        Self {
            samples: 15,
            sample_budget: Duration::from_millis(10),
            characterization_samples: 400,
            fleet_frames: 600,
        }
    }

    /// Reduced CI mode (`repro -- bench --smoke`): the whole suite completes
    /// in well under a second.
    pub fn smoke() -> Self {
        Self {
            samples: 5,
            sample_budget: Duration::from_millis(2),
            characterization_samples: 150,
            fleet_frames: 200,
        }
    }
}

/// Times `op`: one calibration call picks the per-batch iteration count,
/// then `options.samples` batches run and the minimum batch mean wins (see
/// [`TimingRow`] for why the minimum).
fn measure(name: &str, options: &SuiteOptions, mut op: impl FnMut()) -> TimingRow {
    let start = Instant::now();
    op();
    let once = start.elapsed().max(Duration::from_nanos(25));
    let iters = (options.sample_budget.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
    let mut best = f64::INFINITY;
    for _ in 0..options.samples.max(1) {
        let start = Instant::now();
        for _ in 0..iters {
            op();
        }
        let per_op = start.elapsed().as_nanos() as f64 / iters as f64;
        best = best.min(per_op);
    }
    TimingRow::new(name, best, options.samples.max(1), iters)
}

/// Runs the whole suite with the built-in synthetic adversarial fixture.
/// See [`run_suite_with`] for the corpus-driven variant `repro -- bench`
/// uses.
pub fn run_suite(seed: u64, options: &SuiteOptions) -> Vec<TimingRow> {
    let fixture = AdversarialFixture::synthetic(seed, options.fleet_frames);
    run_suite_with(seed, options, &fixture)
}

/// Runs the whole suite and returns one row per [`BENCH_NAMES`] entry, in
/// order. Timings are hardware-dependent; everything else about the rows
/// (names, count, order) is stable. `fixture` supplies the worst-case
/// fleet behind `fleet/step_adversarial`.
pub fn run_suite_with(
    seed: u64,
    options: &SuiteOptions,
    fixture: &AdversarialFixture,
) -> Vec<TimingRow> {
    let characterization = bench_characterization(options.characterization_samples, seed);
    let graph = ConfidenceGraph::build(&characterization.samples, GraphConfig::paper_defaults());
    let mut rows = Vec::with_capacity(BENCH_NAMES.len());

    // confidence_graph/predict — the "map lookup at runtime" the paper
    // substitutes for costly classifiers.
    rows.push(measure(BENCH_NAMES[0], options, || {
        black_box(graph.predict(ModelId::YoloV7, black_box(0.6)));
    }));

    // scheduler/argmax — the full Algorithm 1 pass via the core hook that
    // bypasses the similarity gate.
    let mut scheduler = Scheduler::new(
        ShiftConfig::paper_defaults(),
        &characterization,
        graph.clone(),
    )
    .expect("bench scheduler builds");
    let current = CandidatePair::new(ModelId::YoloV7, AcceleratorId::Gpu);
    rows.push(measure(BENCH_NAMES[1], options, || {
        black_box(scheduler.force_reschedule(black_box(current), 0.55, 0.1));
    }));

    // ncc/context_detect — the per-frame similarity (full-frame NCC plus the
    // bbox-crop NCC) at the standard 64 px evaluation resolution.
    let frames: Vec<_> = Scenario::scenario_1().with_num_frames(2).stream().collect();
    let mut detector = ContextDetector::new();
    detector.update(&frames[0], frames[0].truth.as_ref());
    rows.push(measure(BENCH_NAMES[2], options, || {
        black_box(detector.similarity(&frames[1], frames[1].truth.as_ref()));
    }));

    // ncc/region — the bbox-crop NCC alone, through the reusable scratch
    // (fused crop + 16x16 resize, no per-call allocation).
    let prev_bbox = frames[0].truth.expect("scenario 1 has ground truth");
    let cur_bbox = frames[1].truth.expect("scenario 1 has ground truth");
    let mut region = shift_video::RegionNcc::new();
    rows.push(measure(BENCH_NAMES[3], options, || {
        black_box(region.ncc_regions(
            &frames[0].image,
            black_box(&prev_bbox),
            &frames[1].image,
            black_box(&cur_bbox),
        ));
    }));

    // similarity/frame — the stateless convenience helper (full-frame NCC +
    // allocating region path), the cost a caller pays without the detector's
    // scratch reuse.
    rows.push(measure(BENCH_NAMES[4], options, || {
        black_box(shift_video::frame_similarity(
            &frames[0].image,
            black_box(&prev_bbox),
            &frames[1].image,
            black_box(&cur_bbox),
        ));
    }));

    // loader/lru_churn — cycling four large models through the 1536 MB GPU
    // pool; the cycle does not fit, so steady state is one eviction + one
    // load per call.
    let mut engine = bench_engine(seed);
    let mut loader = DynamicModelLoader::new();
    let churn = [
        ModelId::YoloV7E6E,
        ModelId::YoloV7X,
        ModelId::SsdResnet50,
        ModelId::YoloV7,
    ];
    let mut next = 0usize;
    rows.push(measure(BENCH_NAMES[5], options, || {
        let model = churn[next % churn.len()];
        next += 1;
        black_box(
            loader
                .ensure_loaded(&mut engine, CandidatePair::new(model, AcceleratorId::Gpu))
                .expect("churn models fit an empty pool"),
        );
    }));

    // fleet/step — one scheduling step of a 3-stream fleet on one shared
    // SoC. The fixture is rebuilt when its streams are exhausted; the rebuild
    // lands inside at most one batch and the minimum estimator discards it.
    let build_fleet = || {
        let specs = [
            Scenario::scenario_1(),
            Scenario::scenario_3(),
            Scenario::scenario_5(),
        ]
        .into_iter()
        .enumerate()
        .map(|(i, scenario)| {
            StreamSpec::new(
                format!("bench-s{i}"),
                scenario.with_num_frames(options.fleet_frames),
                ShiftConfig::paper_defaults().with_accuracy_goal(0.2),
            )
        })
        .collect::<Vec<_>>();
        FleetBuilder::new(bench_engine(seed), &characterization)
            .config(FleetConfig::round_robin())
            .streams(specs)
            .build()
            .expect("bench fleet builds")
    };
    let mut fleet = build_fleet();
    rows.push(measure(BENCH_NAMES[6], options, || {
        if fleet.is_done() {
            fleet = build_fleet();
        }
        black_box(fleet.step().expect("fleet step succeeds"));
    }));

    // fleet/step_adversarial — the same per-step cost over the worst-case
    // fleet: every stream is a minimized hunt-corpus scenario (or the
    // synthetic stand-in) and a scripted fault plan keeps dropping
    // accelerators, clamping DVFS and squeezing pools while the scheduler
    // re-plans around it. Same rebuild-on-exhaustion protocol as above.
    let build_adversarial = || {
        FleetBuilder::new(bench_engine(seed), &characterization)
            .config(FleetConfig::round_robin())
            .streams(fixture.specs.iter().cloned())
            .fault_plan(fixture.plan.clone())
            .build()
            .expect("adversarial bench fleet builds")
    };
    let mut adversarial = build_adversarial();
    rows.push(measure(BENCH_NAMES[7], options, || {
        if adversarial.is_done() {
            adversarial = build_adversarial();
        }
        black_box(adversarial.step().expect("adversarial fleet step succeeds"));
    }));

    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_options() -> SuiteOptions {
        SuiteOptions {
            samples: 2,
            sample_budget: Duration::from_micros(200),
            characterization_samples: 60,
            fleet_frames: 40,
        }
    }

    #[test]
    fn suite_produces_one_positive_row_per_bench_in_order() {
        let rows = run_suite(5, &tiny_options());
        assert_eq!(rows.len(), BENCH_NAMES.len());
        for (row, name) in rows.iter().zip(BENCH_NAMES) {
            assert_eq!(row.name, name);
            assert!(row.ns_per_op > 0.0, "{name} measured nothing");
            assert!(row.ns_per_op.is_finite());
            assert!(row.iters_per_sample >= 1);
        }
    }

    #[test]
    fn synthetic_adversarial_fixture_is_pure_and_faulted() {
        let a = AdversarialFixture::synthetic(7, 30);
        let b = AdversarialFixture::synthetic(7, 30);
        assert_eq!(a.plan, b.plan);
        assert_eq!(a.specs.len(), b.specs.len());
        assert!(!a.specs.is_empty());
        // The fixture must actually script faults — an empty plan would
        // degrade `fleet/step_adversarial` to a copy of `fleet/step`.
        assert_ne!(a.plan, FaultPlan::generate(7, &FaultSpec::none(90)));
    }

    #[test]
    fn suite_accepts_an_external_adversarial_fixture() {
        let options = tiny_options();
        let fixture = AdversarialFixture::synthetic(11, options.fleet_frames);
        let rows = run_suite_with(5, &options, &fixture);
        let row = rows.last().expect("suite is non-empty");
        assert_eq!(row.name, "fleet/step_adversarial");
        assert!(row.ns_per_op > 0.0);
    }

    #[test]
    fn bench_names_are_unique() {
        let unique: std::collections::BTreeSet<_> = BENCH_NAMES.iter().collect();
        assert_eq!(unique.len(), BENCH_NAMES.len());
    }

    #[test]
    fn measure_counts_every_iteration() {
        let mut calls = 0u64;
        let options = tiny_options();
        let row = measure("counted", &options, || calls += 1);
        // 1 calibration call + samples * iters.
        assert_eq!(calls, 1 + options.samples as u64 * row.iters_per_sample);
    }
}
