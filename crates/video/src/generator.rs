//! Procedural scenario generation: an unbounded, deterministic scenario
//! space.
//!
//! The paper evaluates SHIFT on six fixed UAV videos; every scenario the
//! scheduler ever sees is hand-written. This module turns those six videos
//! into a *family*: a declarative [`ScenarioSpec`] describes a workload class
//! (environment, trajectory family, weather regime, clutter churn, occlusion
//! and out-of-view processes, scene-cut bursts) and a seeded
//! [`ScenarioGenerator`] composes arbitrary [`Scenario`]s from it. Generation
//! is a pure function of `(generator seed, spec, replica index)`, so the same
//! triple always yields a byte-identical scenario — the whole scenario space
//! inherits the repository's bit-for-bit reproducibility.
//!
//! Generated scenarios maintain the invariants the rest of the stack relies
//! on (and the property suite in `tests/property_scenario_generator.rs`
//! locks):
//!
//! * ground-truth bounding boxes stay fully inside the frame for every
//!   trajectory family (waypoints are confined to a safe interior box that
//!   accounts for the largest possible target),
//! * background segments are sorted, start at `0.0` and stay in `[0, 1]`,
//! * occlusion and out-of-view windows never overlap (they are laid out along
//!   a single non-backtracking time cursor),
//! * the spec's accuracy goal is conservative enough that at least one
//!   loadable (model, accelerator) pair can meet it.
//!
//! [`ScenarioLibrary`] names the standard workload classes — from a stable
//! indoor hover to a fog-bound extreme with scene-cut bursts that defeat the
//! NCC similarity gate — annotated with a [`Difficulty`] so experiments can
//! sweep a whole difficulty grid (`repro -- stress`).
//!
//! ```
//! use shift_video::generator::{ScenarioGenerator, ScenarioLibrary};
//!
//! let library = ScenarioLibrary::standard();
//! let generator = ScenarioGenerator::new(2024);
//! let spec = library.class("outdoor-approach").unwrap();
//! let a = generator.generate(spec, 0);
//! let b = generator.generate(spec, 0);
//! assert_eq!(a, b, "same (seed, spec, index) => identical scenario");
//! assert_ne!(a, generator.generate(spec, 1), "replicas differ in content");
//! ```

use crate::scenario::{BackgroundSegment, Environment, Scenario, Window};
use crate::trajectory::{Trajectory, Waypoint};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Horizontal safe band for trajectory waypoints: with the largest target
/// fraction (0.45 of the frame width at distance 0) the box half-width is
/// 0.225, so any center inside `[0.24, 0.76]` keeps the box in-frame. The
/// in-bounds constraint is linear along each trajectory segment, so holding
/// it at the waypoints holds it everywhere.
pub const SAFE_X: (f64, f64) = (0.24, 0.76);

/// Vertical safe band: the box half-height is `0.45 * 0.8 / 2 = 0.18` of the
/// frame height, so centers in `[0.20, 0.80]` stay in-frame.
pub const SAFE_Y: (f64, f64) = (0.20, 0.80);

/// The trajectory families the generator composes, mirroring the motion
/// archetypes of the paper's six videos plus the extension scenarios.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TrajectoryFamily {
    /// Recede from the camera, traverse while far, return close — strong
    /// apparent-size changes (the paper's Scenario 1 archetype).
    Approach,
    /// Circle a point of interest at a fixed distance (surveillance orbit).
    Orbit,
    /// Cross the frame laterally with vertical drift and distance variation
    /// (the paper's Scenario 2 archetype).
    FlyThrough,
    /// Station-hold with light wind jitter (the paper's Scenario 3
    /// archetype).
    Hover,
}

impl std::fmt::Display for TrajectoryFamily {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            TrajectoryFamily::Approach => "approach",
            TrajectoryFamily::Orbit => "orbit",
            TrajectoryFamily::FlyThrough => "fly-through",
            TrajectoryFamily::Hover => "hover",
        };
        write!(f, "{name}")
    }
}

impl std::str::FromStr for TrajectoryFamily {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "approach" => Ok(TrajectoryFamily::Approach),
            "orbit" => Ok(TrajectoryFamily::Orbit),
            "fly-through" => Ok(TrajectoryFamily::FlyThrough),
            "hover" => Ok(TrajectoryFamily::Hover),
            other => Err(format!("unknown trajectory family {other:?}")),
        }
    }
}

/// Lighting / weather regime: maps to the contrast and illumination ranges
/// the background segments are sampled from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WeatherRegime {
    /// Bright, high-contrast capture conditions.
    Clear,
    /// Flat light: medium contrast and illumination.
    Overcast,
    /// Fog or haze: contrast collapses while lighting stays workable.
    Fog,
    /// Low sun / dusk: illumination collapses, contrast suffers.
    Dusk,
}

impl WeatherRegime {
    /// The target/background contrast range of this regime.
    pub fn contrast_range(&self) -> (f64, f64) {
        match self {
            WeatherRegime::Clear => (0.65, 0.90),
            WeatherRegime::Overcast => (0.45, 0.70),
            WeatherRegime::Fog => (0.20, 0.45),
            WeatherRegime::Dusk => (0.35, 0.60),
        }
    }

    /// The illumination-quality range of this regime.
    pub fn lighting_range(&self) -> (f64, f64) {
        match self {
            WeatherRegime::Clear => (0.80, 0.95),
            WeatherRegime::Overcast => (0.55, 0.75),
            WeatherRegime::Fog => (0.50, 0.70),
            WeatherRegime::Dusk => (0.25, 0.45),
        }
    }
}

impl std::fmt::Display for WeatherRegime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            WeatherRegime::Clear => "clear",
            WeatherRegime::Overcast => "overcast",
            WeatherRegime::Fog => "fog",
            WeatherRegime::Dusk => "dusk",
        };
        write!(f, "{name}")
    }
}

impl std::str::FromStr for WeatherRegime {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "clear" => Ok(WeatherRegime::Clear),
            "overcast" => Ok(WeatherRegime::Overcast),
            "fog" => Ok(WeatherRegime::Fog),
            "dusk" => Ok(WeatherRegime::Dusk),
            other => Err(format!("unknown weather regime {other:?}")),
        }
    }
}

/// Difficulty annotation of a workload class; drives the spec's default
/// ranges and lets experiments sweep a difficulty grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Difficulty {
    /// Close target, stable scene, generous accuracy goal.
    Easy,
    /// Moderate distance and clutter with occasional events.
    Medium,
    /// Long distances, heavy clutter, frequent occlusion/absence events.
    Hard,
    /// Everything at once: long range, churn, bursts, absences.
    Extreme,
}

impl Difficulty {
    /// All difficulties, easiest first.
    pub const ALL: [Difficulty; 4] = [
        Difficulty::Easy,
        Difficulty::Medium,
        Difficulty::Hard,
        Difficulty::Extreme,
    ];

    /// Stable lowercase label (used in CSV rows and table cells).
    pub fn label(&self) -> &'static str {
        match self {
            Difficulty::Easy => "easy",
            Difficulty::Medium => "medium",
            Difficulty::Hard => "hard",
            Difficulty::Extreme => "extreme",
        }
    }

    /// Numeric rank, 0 (easy) to 3 (extreme).
    pub fn rank(&self) -> u8 {
        match self {
            Difficulty::Easy => 0,
            Difficulty::Medium => 1,
            Difficulty::Hard => 2,
            Difficulty::Extreme => 3,
        }
    }
}

impl std::fmt::Display for Difficulty {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.label())
    }
}

impl std::str::FromStr for Difficulty {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Difficulty::ALL
            .into_iter()
            .find(|d| d.label() == s)
            .ok_or_else(|| format!("unknown difficulty {s:?}"))
    }
}

/// Declarative description of a workload class. Numeric pairs are sampling
/// ranges the generator draws one value per scenario from: integer pairs
/// are inclusive, float pairs are half-open `[min, max)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// Class name; generated scenarios are named `{name}-s{seed}-r{index}`.
    pub name: String,
    /// Indoor / outdoor capture.
    pub environment: Environment,
    /// Trajectory family to compose.
    pub family: TrajectoryFamily,
    /// Lighting / weather regime of the background segments.
    pub weather: WeatherRegime,
    /// Difficulty annotation (drives the default ranges below).
    pub difficulty: Difficulty,
    /// Frame-count range.
    pub frames: (usize, usize),
    /// Background segment count range (clutter churn across the video).
    pub segments: (usize, usize),
    /// Background clutter amplitude range.
    pub clutter: (f64, f64),
    /// Normalized camera-distance range the trajectory moves within.
    pub distance: (f64, f64),
    /// Requested number of partial-occlusion events. Best-effort: events
    /// are laid out along `[0.06, 0.90)` of normalized time with sampled
    /// gaps, and any that no longer fit are dropped (this is also what
    /// keeps the windows disjoint by construction).
    pub occlusions: (usize, usize),
    /// Requested number of out-of-view events (same best-effort layout as
    /// `occlusions`).
    pub absences: (usize, usize),
    /// Number of scene-cut bursts (each burst inserts a run of abrupt
    /// background changes that defeats the NCC similarity gate).
    pub cut_bursts: (usize, usize),
    /// The accuracy goal a SHIFT run on this class is held to. Keep it in
    /// `[0.05, 0.38]` — the band [`with_accuracy_goal`](Self::with_accuracy_goal)
    /// clamps to — so at least one loadable (model, accelerator) pair can
    /// always meet it (the strongest characterized model sits well above);
    /// writing the field directly bypasses that clamp.
    pub accuracy_goal: f64,
}

impl ScenarioSpec {
    /// Creates a spec with difficulty-derived default ranges.
    pub fn new(
        name: impl Into<String>,
        environment: Environment,
        family: TrajectoryFamily,
        weather: WeatherRegime,
        difficulty: Difficulty,
    ) -> Self {
        let (frames, segments, clutter, distance, occlusions, absences, cut_bursts, goal) =
            match difficulty {
                Difficulty::Easy => (
                    (400, 700),
                    (1, 2),
                    (0.05, 0.30),
                    (0.10, 0.35),
                    (0, 1),
                    (0, 0),
                    (0, 0),
                    0.32,
                ),
                Difficulty::Medium => (
                    (500, 900),
                    (2, 4),
                    (0.30, 0.60),
                    (0.20, 0.60),
                    (0, 2),
                    (0, 1),
                    (0, 0),
                    0.25,
                ),
                Difficulty::Hard => (
                    (600, 1100),
                    (3, 6),
                    (0.50, 0.85),
                    (0.40, 0.85),
                    (1, 3),
                    (0, 2),
                    (0, 1),
                    0.20,
                ),
                Difficulty::Extreme => (
                    (700, 1200),
                    (4, 8),
                    (0.70, 0.95),
                    (0.55, 0.95),
                    (2, 5),
                    (1, 2),
                    (1, 3),
                    0.15,
                ),
            };
        Self {
            name: name.into(),
            environment,
            family,
            weather,
            difficulty,
            frames,
            segments,
            clutter,
            distance,
            occlusions,
            absences,
            cut_bursts,
            accuracy_goal: goal,
        }
    }

    /// A maximally stable class: indoor hover over one low-clutter
    /// background, no occlusions, no absences, no cuts. The NCC gate should
    /// hold for most of such a video.
    pub fn stable_scene() -> Self {
        Self::new(
            "stable-scene",
            Environment::Indoor,
            TrajectoryFamily::Hover,
            WeatherRegime::Clear,
            Difficulty::Easy,
        )
        .with_segments(1, 1)
        .with_clutter(0.05, 0.15)
        .with_occlusions(0, 0)
        .with_absences(0, 0)
        .with_cut_bursts(0, 0)
    }

    /// A class built to defeat the NCC gate: a long-range fly-through over
    /// bursts of abrupt background changes, forcing a re-scheduling pass at
    /// every cut. The distance band keeps the target small so the (stable)
    /// target appearance cannot carry the frame correlation across a cut.
    pub fn scene_cut_burst() -> Self {
        Self::new(
            "scene-cut-burst",
            Environment::Outdoor,
            TrajectoryFamily::FlyThrough,
            WeatherRegime::Clear,
            Difficulty::Hard,
        )
        .with_cut_bursts(3, 5)
        .with_distance(0.70, 0.95)
        .with_occlusions(0, 0)
        .with_absences(0, 0)
    }

    /// Overrides the frame-count range.
    pub fn with_frames(mut self, min: usize, max: usize) -> Self {
        let min = min.max(30);
        self.frames = (min, max.max(min));
        self
    }

    /// Overrides the background-segment count range (minimum 1).
    pub fn with_segments(mut self, min: usize, max: usize) -> Self {
        let min = min.max(1);
        self.segments = (min, max.max(min));
        self
    }

    /// Overrides the clutter range (clamped to `[0, 1]`).
    pub fn with_clutter(mut self, min: f64, max: f64) -> Self {
        let min = min.clamp(0.0, 1.0);
        self.clutter = (min, max.clamp(min, 1.0));
        self
    }

    /// Overrides the distance range (clamped to `[0, 1]`).
    pub fn with_distance(mut self, min: f64, max: f64) -> Self {
        let min = min.clamp(0.0, 1.0);
        self.distance = (min, max.clamp(min, 1.0));
        self
    }

    /// Overrides the occlusion-event count range.
    pub fn with_occlusions(mut self, min: usize, max: usize) -> Self {
        self.occlusions = (min, max.max(min));
        self
    }

    /// Overrides the out-of-view event count range.
    pub fn with_absences(mut self, min: usize, max: usize) -> Self {
        self.absences = (min, max.max(min));
        self
    }

    /// Overrides the scene-cut burst count range.
    pub fn with_cut_bursts(mut self, min: usize, max: usize) -> Self {
        self.cut_bursts = (min, max.max(min));
        self
    }

    /// Overrides the accuracy goal, clamped to the schedulable band
    /// `[0.05, 0.38]`.
    pub fn with_accuracy_goal(mut self, goal: f64) -> Self {
        self.accuracy_goal = goal.clamp(0.05, 0.38);
        self
    }

    /// Encodes the spec as stable `key = value` lines.
    ///
    /// The vendored serde derives are no-ops, so this hand-rolled format is
    /// what lets specs be committed to disk (the `tests/corpus/` regression
    /// cases). Floats use Rust's shortest round-trip formatting, so
    /// [`decode`](Self::decode) reconstructs the spec bit-for-bit —
    /// `decode(encode(spec)) == spec` for any spec whose name contains no
    /// newline.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        let mut push = |key: &str, value: String| {
            out.push_str(key);
            out.push_str(" = ");
            out.push_str(&value);
            out.push('\n');
        };
        push("name", self.name.clone());
        push("environment", self.environment.to_string());
        push("family", self.family.to_string());
        push("weather", self.weather.to_string());
        push("difficulty", self.difficulty.to_string());
        push("frames", format!("{} {}", self.frames.0, self.frames.1));
        push(
            "segments",
            format!("{} {}", self.segments.0, self.segments.1),
        );
        push("clutter", format!("{} {}", self.clutter.0, self.clutter.1));
        push(
            "distance",
            format!("{} {}", self.distance.0, self.distance.1),
        );
        push(
            "occlusions",
            format!("{} {}", self.occlusions.0, self.occlusions.1),
        );
        push(
            "absences",
            format!("{} {}", self.absences.0, self.absences.1),
        );
        push(
            "cut_bursts",
            format!("{} {}", self.cut_bursts.0, self.cut_bursts.1),
        );
        push("accuracy_goal", format!("{}", self.accuracy_goal));
        out
    }

    /// Decodes a spec from the [`encode`](Self::encode) format.
    ///
    /// Blank lines and `#` comment lines are ignored; every spec key must
    /// appear exactly once. Values are taken verbatim (no clamping), so the
    /// round trip is exact.
    pub fn decode(text: &str) -> Result<Self, String> {
        let mut name: Option<String> = None;
        let mut environment: Option<Environment> = None;
        let mut family: Option<TrajectoryFamily> = None;
        let mut weather: Option<WeatherRegime> = None;
        let mut difficulty: Option<Difficulty> = None;
        let mut frames: Option<(usize, usize)> = None;
        let mut segments: Option<(usize, usize)> = None;
        let mut clutter: Option<(f64, f64)> = None;
        let mut distance: Option<(f64, f64)> = None;
        let mut occlusions: Option<(usize, usize)> = None;
        let mut absences: Option<(usize, usize)> = None;
        let mut cut_bursts: Option<(usize, usize)> = None;
        let mut accuracy_goal: Option<f64> = None;
        for (key, value) in decode_lines(text)? {
            match key {
                "name" => set_field(&mut name, key, Ok(value.to_string()))?,
                "environment" => set_field(&mut environment, key, value.parse())?,
                "family" => set_field(&mut family, key, value.parse())?,
                "weather" => set_field(&mut weather, key, value.parse())?,
                "difficulty" => set_field(&mut difficulty, key, value.parse())?,
                "frames" => set_field(&mut frames, key, parse_usize_pair(value))?,
                "segments" => set_field(&mut segments, key, parse_usize_pair(value))?,
                "clutter" => set_field(&mut clutter, key, parse_f64_pair(value))?,
                "distance" => set_field(&mut distance, key, parse_f64_pair(value))?,
                "occlusions" => set_field(&mut occlusions, key, parse_usize_pair(value))?,
                "absences" => set_field(&mut absences, key, parse_usize_pair(value))?,
                "cut_bursts" => set_field(&mut cut_bursts, key, parse_usize_pair(value))?,
                "accuracy_goal" => set_field(
                    &mut accuracy_goal,
                    key,
                    value.parse().map_err(|e| format!("{e}")),
                )?,
                other => return Err(format!("unknown scenario spec key {other:?}")),
            }
        }
        Ok(Self {
            name: require_field(name, "name")?,
            environment: require_field(environment, "environment")?,
            family: require_field(family, "family")?,
            weather: require_field(weather, "weather")?,
            difficulty: require_field(difficulty, "difficulty")?,
            frames: require_field(frames, "frames")?,
            segments: require_field(segments, "segments")?,
            clutter: require_field(clutter, "clutter")?,
            distance: require_field(distance, "distance")?,
            occlusions: require_field(occlusions, "occlusions")?,
            absences: require_field(absences, "absences")?,
            cut_bursts: require_field(cut_bursts, "cut_bursts")?,
            accuracy_goal: require_field(accuracy_goal, "accuracy_goal")?,
        })
    }
}

/// Splits `key = value` lines, skipping blanks and `#` comments. Shared by
/// the spec codec here and re-exported for the corpus-case format built on
/// top of it.
pub fn decode_lines(text: &str) -> Result<Vec<(&str, &str)>, String> {
    let mut pairs = Vec::new();
    for (number, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| format!("line {}: expected `key = value`, got {raw:?}", number + 1))?;
        pairs.push((key.trim(), value.trim()));
    }
    Ok(pairs)
}

/// Stores a decoded value, rejecting duplicate keys and propagating parse
/// errors with the key name attached.
pub fn set_field<T>(
    slot: &mut Option<T>,
    key: &str,
    value: Result<T, String>,
) -> Result<(), String> {
    if slot.is_some() {
        return Err(format!("duplicate key {key:?}"));
    }
    *slot = Some(value.map_err(|e| format!("key {key:?}: {e}"))?);
    Ok(())
}

/// Unwraps a decoded field, naming the key when it is missing.
pub fn require_field<T>(slot: Option<T>, key: &str) -> Result<T, String> {
    slot.ok_or_else(|| format!("missing key {key:?}"))
}

/// Parses a space-separated inclusive `usize` range.
pub fn parse_usize_pair(value: &str) -> Result<(usize, usize), String> {
    let (a, b) = value
        .split_once(' ')
        .ok_or_else(|| format!("expected two integers, got {value:?}"))?;
    let min = a.trim().parse().map_err(|e| format!("{e}"))?;
    let max = b.trim().parse().map_err(|e| format!("{e}"))?;
    Ok((min, max))
}

/// Parses a space-separated `f64` range.
pub fn parse_f64_pair(value: &str) -> Result<(f64, f64), String> {
    let (a, b) = value
        .split_once(' ')
        .ok_or_else(|| format!("expected two floats, got {value:?}"))?;
    let min = a.trim().parse().map_err(|e| format!("{e}"))?;
    let max = b.trim().parse().map_err(|e| format!("{e}"))?;
    Ok((min, max))
}

/// Seeded procedural scenario generator. Generation is pure in
/// `(seed, spec, index)`: no internal state is mutated, so one generator can
/// be shared freely and replayed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScenarioGenerator {
    seed: u64,
}

impl ScenarioGenerator {
    /// Creates a generator with the given seed.
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }

    /// The generator seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Composes one scenario: replica `index` of `spec` under this seed.
    pub fn generate(&self, spec: &ScenarioSpec, index: u64) -> Scenario {
        let mut rng = StdRng::seed_from_u64(mix_seed(self.seed, &spec.name, index));
        let num_frames = sample_usize(&mut rng, spec.frames);
        let trajectory = build_trajectory(&mut rng, spec);
        let backgrounds = build_backgrounds(&mut rng, spec);
        let (occlusions, absences) = build_windows(&mut rng, spec);
        // Per-frame render noise / shake seed, derived after all structural
        // draws so structure and appearance stay independently stable. Kept
        // small: the renderer folds `seed as u32 * 31` into the f32 phase of
        // its procedural background, and a full-range seed would push the
        // phase past f32 resolution, collapsing the texture difference
        // between adjacent background segments (and with it the NCC drop a
        // scene cut must produce).
        let scenario_seed = rng.next_u64() % 10_000;
        Scenario::new(
            format!("{}-s{}-r{index}", spec.name, self.seed),
            spec.environment,
            num_frames,
            trajectory,
            backgrounds,
            occlusions,
            absences,
            scenario_seed,
        )
    }
}

/// Mixes the generator seed, the spec name and the replica index into one
/// 64-bit stream seed (FNV-1a over the name, then a SplitMix64-style
/// finalizer).
fn mix_seed(seed: u64, name: &str, index: u64) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for byte in name.as_bytes() {
        h ^= u64::from(*byte);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h ^= seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    h ^= index.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^ (h >> 31)
}

/// Draws from an inclusive `usize` range.
fn sample_usize(rng: &mut StdRng, (min, max): (usize, usize)) -> usize {
    if min >= max {
        min
    } else {
        rng.gen_range(min..max + 1)
    }
}

/// Draws from a half-open `[min, max)` range (collapses to `min` when the
/// range is empty or inverted).
fn sample_f64(rng: &mut StdRng, (min, max): (f64, f64)) -> f64 {
    if min >= max {
        min
    } else {
        rng.gen_range(min..max)
    }
}

/// Confines a waypoint to the safe interior box, guaranteeing the
/// ground-truth bounding box stays inside the frame at any distance.
fn safe_waypoint(t: f64, x: f64, y: f64, distance: f64) -> Waypoint {
    Waypoint::new(
        t,
        x.clamp(SAFE_X.0, SAFE_X.1),
        y.clamp(SAFE_Y.0, SAFE_Y.1),
        distance.clamp(0.0, 1.0),
    )
}

/// Builds a trajectory of the spec's family inside the safe box.
fn build_trajectory(rng: &mut StdRng, spec: &ScenarioSpec) -> Trajectory {
    let (d_min, d_max) = spec.distance;
    match spec.family {
        TrajectoryFamily::Hover => {
            let x = rng.gen_range(0.35..0.65);
            let y = rng.gen_range(0.30..0.70);
            let distance = sample_f64(rng, spec.distance);
            let amplitude = rng.gen_range(0.0..0.05);
            let phase = rng.gen_range(0.0..std::f64::consts::TAU);
            let segments = 24;
            Trajectory::new(
                (0..=segments)
                    .map(|i| {
                        let t = i as f64 / segments as f64;
                        let angle = t * std::f64::consts::TAU + phase;
                        let dx = amplitude * (3.0 * angle).sin();
                        let dy = 0.6 * amplitude * (2.0 * angle).cos();
                        safe_waypoint(t, x + dx, y + dy, distance)
                    })
                    .collect(),
            )
        }
        TrajectoryFamily::Orbit => {
            let cx = rng.gen_range(0.45..0.55);
            let cy = rng.gen_range(0.45..0.55);
            let radius = rng.gen_range(0.08..0.16);
            let laps = sample_usize(rng, (1, 3));
            let distance = sample_f64(rng, spec.distance);
            let segments = 16 * laps;
            Trajectory::new(
                (0..=segments)
                    .map(|i| {
                        let t = i as f64 / segments as f64;
                        let angle = t * laps as f64 * std::f64::consts::TAU;
                        safe_waypoint(
                            t,
                            cx + radius * angle.cos(),
                            cy + 0.8 * radius * angle.sin(),
                            distance,
                        )
                    })
                    .collect(),
            )
        }
        TrajectoryFamily::FlyThrough => {
            let leftward = rng.gen_bool(0.5);
            let stops = sample_usize(rng, (4, 6));
            let waypoints = (0..stops)
                .map(|i| {
                    let t = i as f64 / (stops - 1) as f64;
                    let x = SAFE_X.0 + (SAFE_X.1 - SAFE_X.0) * if leftward { 1.0 - t } else { t };
                    let y = rng.gen_range(0.30..0.70);
                    let d = sample_f64(rng, (d_min, d_max));
                    safe_waypoint(t, x, y, d)
                })
                .collect();
            Trajectory::new(waypoints)
        }
        TrajectoryFamily::Approach => {
            let near = d_min;
            let far = d_max;
            let x0 = rng.gen_range(0.28..0.48);
            let x1 = rng.gen_range(0.52..0.72);
            let y_base = rng.gen_range(0.35..0.65);
            let y_drift = rng.gen_range(-0.10..0.10);
            Trajectory::new(vec![
                safe_waypoint(0.0, x0, y_base, near),
                safe_waypoint(0.25, (x0 + x1) / 2.0, y_base + y_drift, far),
                safe_waypoint(0.55, x1, y_base - y_drift, far),
                safe_waypoint(
                    0.80,
                    (x0 + x1) / 2.0,
                    y_base + y_drift / 2.0,
                    (near + far) / 2.0,
                ),
                safe_waypoint(1.0, x0, y_base, near),
            ])
        }
    }
}

/// Builds the background segments: the base churn sequence plus any
/// scene-cut bursts. The first segment always starts at exactly `0.0`.
///
/// When the spec requests cut bursts, *every* segment boundary must be a
/// hard cut (the class exists to defeat the NCC gate), so the sorted
/// segments alternate between extreme high-clutter and extreme low-clutter
/// appearances — two adjacent segments can never resemble each other.
/// Without bursts, segments sample the spec's clutter range and the weather
/// regime's contrast/lighting bands independently.
fn build_backgrounds(rng: &mut StdRng, spec: &ScenarioSpec) -> Vec<BackgroundSegment> {
    let contrast_range = spec.weather.contrast_range();
    let lighting_range = spec.weather.lighting_range();
    let count = sample_usize(rng, spec.segments);
    let mut starts = vec![0.0];
    for _ in 1..count {
        starts.push(rng.gen_range(0.05..0.90));
    }

    // Scene-cut bursts: each burst contributes a short run of three extra
    // boundaries. Every new segment changes the renderer's background id
    // (and with it the procedural texture phase), so each boundary is a
    // hard cut the NCC gate cannot smooth over.
    let bursts = sample_usize(rng, spec.cut_bursts);
    for _ in 0..bursts {
        let center = rng.gen_range(0.12..0.80);
        for k in 0..3 {
            starts.push((center + 0.016 * k as f64).min(0.96));
        }
    }
    starts.sort_by(|a, b| a.partial_cmp(b).expect("finite start"));

    if bursts > 0 {
        // Clutter alternates between extremes by sorted parity — that is
        // what decorrelates adjacent textures (NCC is invariant to the
        // constant lighting offset, and contrast only shades the target),
        // so contrast and lighting can still honour the weather regime.
        starts
            .into_iter()
            .enumerate()
            .map(|(i, start)| {
                let clutter = if i % 2 == 0 {
                    rng.gen_range(0.85..0.95)
                } else {
                    rng.gen_range(0.05..0.15)
                };
                BackgroundSegment::new(
                    start,
                    clutter,
                    sample_f64(rng, contrast_range),
                    sample_f64(rng, lighting_range),
                )
            })
            .collect()
    } else {
        starts
            .into_iter()
            .map(|start| {
                BackgroundSegment::new(
                    start,
                    sample_f64(rng, spec.clutter),
                    sample_f64(rng, contrast_range),
                    sample_f64(rng, lighting_range),
                )
            })
            .collect()
    }
}

/// Lays out the occlusion and out-of-view windows along one forward-only
/// time cursor, so no two windows (of either kind) can ever overlap.
fn build_windows(rng: &mut StdRng, spec: &ScenarioSpec) -> (Vec<Window>, Vec<Window>) {
    let n_occlusions = sample_usize(rng, spec.occlusions);
    let n_absences = sample_usize(rng, spec.absences);
    // Interleave the event kinds deterministically (Fisher-Yates).
    let mut kinds: Vec<bool> = std::iter::repeat_n(true, n_occlusions)
        .chain(std::iter::repeat_n(false, n_absences))
        .collect();
    for i in (1..kinds.len()).rev() {
        let j = rng.gen_range(0..i + 1);
        kinds.swap(i, j);
    }

    let mut occlusions = Vec::new();
    let mut absences = Vec::new();
    let mut cursor = 0.06;
    for is_occlusion in kinds {
        let gap = rng.gen_range(0.02..0.10);
        let duration = rng.gen_range(0.015..0.05);
        let start = cursor + gap;
        let end = start + duration;
        if end > 0.90 {
            break;
        }
        if is_occlusion {
            occlusions.push(Window::new(start, end, rng.gen_range(0.35..0.80)));
        } else {
            absences.push(Window::new(start, end, 1.0));
        }
        cursor = end;
    }
    (occlusions, absences)
}

/// A difficulty-annotated collection of named workload classes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioLibrary {
    specs: Vec<ScenarioSpec>,
}

impl ScenarioLibrary {
    /// The standard eight workload classes, spanning the full difficulty
    /// grid from a stable indoor hover to a fog-bound extreme with scene-cut
    /// bursts.
    pub fn standard() -> Self {
        Self {
            specs: vec![
                ScenarioSpec::stable_scene(),
                ScenarioSpec::new(
                    "indoor-sweep",
                    Environment::Indoor,
                    TrajectoryFamily::FlyThrough,
                    WeatherRegime::Overcast,
                    Difficulty::Medium,
                )
                .with_distance(0.15, 0.45),
                ScenarioSpec::new(
                    "outdoor-approach",
                    Environment::Outdoor,
                    TrajectoryFamily::Approach,
                    WeatherRegime::Clear,
                    Difficulty::Medium,
                ),
                ScenarioSpec::new(
                    "orbit-overcast",
                    Environment::Outdoor,
                    TrajectoryFamily::Orbit,
                    WeatherRegime::Overcast,
                    Difficulty::Medium,
                ),
                ScenarioSpec::new(
                    "long-range-fog",
                    Environment::Outdoor,
                    TrajectoryFamily::FlyThrough,
                    WeatherRegime::Fog,
                    Difficulty::Hard,
                )
                .with_distance(0.60, 0.95),
                ScenarioSpec::new(
                    "dusk-occlusions",
                    Environment::Outdoor,
                    TrajectoryFamily::Approach,
                    WeatherRegime::Dusk,
                    Difficulty::Hard,
                )
                .with_occlusions(2, 5)
                .with_absences(1, 2),
                ScenarioSpec::scene_cut_burst(),
                ScenarioSpec::new(
                    "chaos-extreme",
                    Environment::Outdoor,
                    TrajectoryFamily::Approach,
                    WeatherRegime::Fog,
                    Difficulty::Extreme,
                ),
            ],
        }
    }

    /// Builds a library from explicit specs.
    pub fn from_specs(specs: Vec<ScenarioSpec>) -> Self {
        Self { specs }
    }

    /// The workload classes, in grid order.
    pub fn specs(&self) -> &[ScenarioSpec] {
        &self.specs
    }

    /// Looks up a class by name.
    pub fn class(&self, name: &str) -> Option<&ScenarioSpec> {
        self.specs.iter().find(|s| s.name == name)
    }

    /// Number of classes.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// Whether the library has no classes.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// Generates the full difficulty grid: `replicas` scenarios per class,
    /// class-major order. With the standard library and 8 replicas this is
    /// the 64-scenario stress sweep.
    pub fn generate_grid(
        &self,
        generator: &ScenarioGenerator,
        replicas: usize,
    ) -> Vec<(ScenarioSpec, Scenario)> {
        let mut grid = Vec::with_capacity(self.specs.len() * replicas);
        for spec in &self.specs {
            for replica in 0..replicas {
                grid.push((spec.clone(), generator.generate(spec, replica as u64)));
            }
        }
        grid
    }

    /// Samples a mixed workload of `n` scenarios by cycling the classes
    /// (used by the fleet soak: every fleet size mixes difficulties).
    /// An empty library yields an empty workload.
    pub fn sample_mixed(
        &self,
        generator: &ScenarioGenerator,
        n: usize,
    ) -> Vec<(ScenarioSpec, Scenario)> {
        if self.specs.is_empty() {
            return Vec::new();
        }
        (0..n)
            .map(|i| {
                let spec = &self.specs[i % self.specs.len()];
                let replica = (i / self.specs.len()) as u64;
                (spec.clone(), generator.generate(spec, replica))
            })
            .collect()
    }
}

impl Default for ScenarioLibrary {
    fn default() -> Self {
        Self::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::MAX_TARGET_FRACTION;

    #[test]
    fn generation_is_pure_in_seed_spec_index() {
        let library = ScenarioLibrary::standard();
        let generator = ScenarioGenerator::new(7);
        for spec in library.specs() {
            let a = generator.generate(spec, 3);
            let b = ScenarioGenerator::new(7).generate(spec, 3);
            assert_eq!(a, b, "{}: same triple must be identical", spec.name);
            assert_eq!(format!("{a:?}"), format!("{b:?}"));
        }
    }

    #[test]
    fn different_seeds_and_replicas_differ() {
        let spec = ScenarioSpec::scene_cut_burst();
        let a = ScenarioGenerator::new(1).generate(&spec, 0);
        let b = ScenarioGenerator::new(2).generate(&spec, 0);
        let c = ScenarioGenerator::new(1).generate(&spec, 1);
        assert_ne!(a, b, "seed must change the scenario");
        assert_ne!(a, c, "replica index must change the scenario");
    }

    #[test]
    fn generated_names_encode_class_seed_and_replica() {
        let spec = ScenarioSpec::stable_scene();
        let scenario = ScenarioGenerator::new(42).generate(&spec, 5);
        assert_eq!(scenario.name(), "stable-scene-s42-r5");
    }

    #[test]
    fn standard_library_spans_the_difficulty_grid() {
        let library = ScenarioLibrary::standard();
        assert_eq!(library.len(), 8);
        for difficulty in Difficulty::ALL {
            assert!(
                library.specs().iter().any(|s| s.difficulty == difficulty),
                "missing difficulty {difficulty}"
            );
        }
        let mut names: Vec<_> = library.specs().iter().map(|s| s.name.clone()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), library.len(), "class names are unique");
        assert!(library.class("stable-scene").is_some());
        assert!(library.class("no-such-class").is_none());
    }

    #[test]
    fn accuracy_goals_stay_in_the_schedulable_band() {
        for spec in ScenarioLibrary::standard().specs() {
            assert!(
                (0.05..=0.38).contains(&spec.accuracy_goal),
                "{}: goal {} outside band",
                spec.name,
                spec.accuracy_goal
            );
        }
        let clamped = ScenarioSpec::stable_scene().with_accuracy_goal(0.99);
        assert_eq!(clamped.accuracy_goal, 0.38);
    }

    #[test]
    fn grid_and_mixed_sampling_have_expected_shapes() {
        let library = ScenarioLibrary::standard();
        let generator = ScenarioGenerator::new(11);
        let grid = library.generate_grid(&generator, 2);
        assert_eq!(grid.len(), 16);
        // Class-major: consecutive pairs share the class.
        assert_eq!(grid[0].0.name, grid[1].0.name);
        assert_ne!(grid[0].1, grid[1].1, "replicas differ");

        let mixed = library.sample_mixed(&generator, 10);
        assert_eq!(mixed.len(), 10);
        assert_eq!(mixed[0].0.name, mixed[8].0.name, "classes cycle");
        assert_ne!(mixed[0].1, mixed[8].1, "second lap uses a new replica");
    }

    #[test]
    fn windows_are_disjoint_and_inside_unit_time() {
        let library = ScenarioLibrary::standard();
        let generator = ScenarioGenerator::new(13);
        for spec in library.specs() {
            for replica in 0..4 {
                let scenario = generator.generate(spec, replica);
                let mut windows: Vec<Window> = scenario
                    .occlusions()
                    .iter()
                    .chain(scenario.absences().iter())
                    .copied()
                    .collect();
                windows.sort_by(|a, b| a.start.partial_cmp(&b.start).unwrap());
                for pair in windows.windows(2) {
                    assert!(
                        pair[0].end <= pair[1].start,
                        "{} r{replica}: windows overlap",
                        spec.name
                    );
                }
                for w in &windows {
                    assert!(w.start >= 0.0 && w.end <= 1.0 && w.start <= w.end);
                }
            }
        }
    }

    #[test]
    fn backgrounds_start_at_zero_and_are_sorted() {
        let generator = ScenarioGenerator::new(17);
        for spec in ScenarioLibrary::standard().specs() {
            let scenario = generator.generate(spec, 0);
            let segments = scenario.backgrounds();
            assert!(!segments.is_empty());
            assert_eq!(segments[0].start, 0.0, "{}", spec.name);
            for pair in segments.windows(2) {
                assert!(pair[0].start <= pair[1].start);
            }
        }
    }

    #[test]
    fn truth_boxes_stay_inside_the_frame() {
        let generator = ScenarioGenerator::new(19);
        for spec in ScenarioLibrary::standard().specs() {
            let scenario = generator.generate(spec, 1);
            for index in 0..scenario.num_frames() {
                if let Some(bbox) = scenario.truth_at(index) {
                    assert!(
                        bbox.x >= 0.0
                            && bbox.y >= 0.0
                            && bbox.right() <= scenario.frame_width() as f64
                            && bbox.bottom() <= scenario.frame_height() as f64,
                        "{} frame {index}: box {bbox:?} leaves the frame",
                        spec.name
                    );
                }
            }
        }
    }

    #[test]
    fn scene_cut_burst_class_produces_many_cuts() {
        let spec = ScenarioSpec::scene_cut_burst();
        let scenario = ScenarioGenerator::new(23)
            .generate(&spec, 0)
            .with_num_frames(200);
        let cuts = (1..scenario.num_frames())
            .filter(|&i| {
                scenario.background_index_at(scenario.time_of(i))
                    != scenario.background_index_at(scenario.time_of(i - 1))
            })
            .count();
        assert!(cuts >= 6, "expected >= 6 scene cuts, got {cuts}");
    }

    #[test]
    fn safe_margins_match_the_largest_target() {
        // The safe box must cover the worst-case half extents.
        assert!(SAFE_X.0 >= MAX_TARGET_FRACTION / 2.0);
        assert!(1.0 - SAFE_X.1 >= MAX_TARGET_FRACTION / 2.0);
        assert!(SAFE_Y.0 >= MAX_TARGET_FRACTION * 0.8 / 2.0);
        assert!(1.0 - SAFE_Y.1 >= MAX_TARGET_FRACTION * 0.8 / 2.0);
    }

    #[test]
    fn display_impls_are_stable() {
        assert_eq!(TrajectoryFamily::FlyThrough.to_string(), "fly-through");
        assert_eq!(WeatherRegime::Fog.to_string(), "fog");
        assert_eq!(Difficulty::Extreme.to_string(), "extreme");
        assert_eq!(Difficulty::Easy.rank(), 0);
    }

    #[test]
    fn enum_labels_round_trip_through_from_str() {
        for family in [
            TrajectoryFamily::Approach,
            TrajectoryFamily::Orbit,
            TrajectoryFamily::FlyThrough,
            TrajectoryFamily::Hover,
        ] {
            assert_eq!(family.to_string().parse(), Ok(family));
        }
        for weather in [
            WeatherRegime::Clear,
            WeatherRegime::Overcast,
            WeatherRegime::Fog,
            WeatherRegime::Dusk,
        ] {
            assert_eq!(weather.to_string().parse(), Ok(weather));
        }
        for difficulty in Difficulty::ALL {
            assert_eq!(difficulty.to_string().parse(), Ok(difficulty));
        }
        for environment in [Environment::Indoor, Environment::Outdoor] {
            assert_eq!(environment.to_string().parse(), Ok(environment));
        }
        assert!("sideways".parse::<TrajectoryFamily>().is_err());
        assert!("hail".parse::<WeatherRegime>().is_err());
        assert!("brutal".parse::<Difficulty>().is_err());
        assert!("orbital".parse::<Environment>().is_err());
    }

    #[test]
    fn spec_encode_decode_round_trips_exactly() {
        for spec in ScenarioLibrary::standard().specs() {
            let text = spec.encode();
            let decoded = ScenarioSpec::decode(&text).expect("decode");
            assert_eq!(&decoded, spec, "{}: round trip must be exact", spec.name);
            assert_eq!(decoded.encode(), text, "re-encode must be byte-identical");
        }
        // Awkward floats survive via shortest round-trip formatting.
        let spec = ScenarioSpec::stable_scene()
            .with_clutter(0.1 + 0.2, 0.7000000000000001)
            .with_accuracy_goal(1.0 / 3.0);
        assert_eq!(ScenarioSpec::decode(&spec.encode()), Ok(spec));
    }

    #[test]
    fn spec_decode_rejects_malformed_input() {
        let good = ScenarioSpec::stable_scene().encode();
        assert!(ScenarioSpec::decode("name").unwrap_err().contains("line 1"));
        assert!(ScenarioSpec::decode(&format!("{good}name = twice\n"))
            .unwrap_err()
            .contains("duplicate key"));
        assert!(ScenarioSpec::decode(&format!("{good}mystery = 1\n"))
            .unwrap_err()
            .contains("unknown scenario spec key"));
        let missing = good
            .lines()
            .filter(|l| !l.starts_with("weather"))
            .collect::<Vec<_>>()
            .join("\n");
        assert!(ScenarioSpec::decode(&missing)
            .unwrap_err()
            .contains("missing key \"weather\""));
        let bad_pair = good.replace("frames = 400 700", "frames = 400");
        assert!(ScenarioSpec::decode(&bad_pair)
            .unwrap_err()
            .contains("expected two integers"));
        // Comments and blank lines are tolerated.
        let commented = format!("# header\n\n{good}");
        assert_eq!(
            ScenarioSpec::decode(&commented),
            Ok(ScenarioSpec::stable_scene())
        );
    }
}
