//! Grayscale images and procedural scene rendering.
//!
//! Frames are rendered as small grayscale buffers: a background whose texture
//! is controlled by the scenario's clutter/lighting parameters plus a target
//! blob whose size and intensity follow the UAV's distance and the
//! target/background contrast. The pixels feed the normalized
//! cross-correlation used by both the SHIFT context detector and the Marlin
//! tracker baseline, so they must actually change when the scene context
//! changes — this is what makes the scheduler's NCC gate meaningful.

use crate::bbox::BoundingBox;
use serde::{Deserialize, Serialize};
use std::sync::{Arc, OnceLock};

/// The lazily computed per-image statistics consumed by the NCC hot path:
/// the mean and the centered squared norm `Σ (v − mean)²`, both accumulated
/// left-to-right in row-major order. Keeping that accumulation order is what
/// lets the single-pass [`crate::ncc`] stay bit-identical to the historical
/// three-pass formulation: each surviving accumulator sees exactly the same
/// operand sequence it did before, only computed once per image instead of
/// once per correlation.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Moments {
    mean: f64,
    centered_norm: f64,
}

/// A row-major grayscale image with `f32` pixel intensities in `[0, 1]`.
///
/// The pixel buffer is shared (`Arc`), so cloning an image — e.g. the
/// context detector remembering the previous frame — is O(1) and keeps the
/// moment cache warm; mutation goes copy-on-write through
/// [`set`](Self::set).
///
/// ```
/// use shift_video::GrayImage;
///
/// let img = GrayImage::from_fn(4, 4, |x, y| (x + y) as f32 / 8.0);
/// assert_eq!(img.get(3, 3), 0.75);
/// assert!((img.mean() - 0.375).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GrayImage {
    width: usize,
    height: usize,
    data: Arc<Vec<f32>>,
    /// Lazy moment cache, shared with clones of this image. A mutation
    /// replaces (or clears) the cell, so stale moments can never leak across
    /// copy-on-write boundaries.
    moments: Arc<OnceLock<Moments>>,
}

impl PartialEq for GrayImage {
    fn eq(&self, other: &Self) -> bool {
        // The moment cache is derived state: two images are equal iff their
        // geometry and pixels are.
        self.width == other.width && self.height == other.height && self.data == other.data
    }
}

impl GrayImage {
    /// Creates an image filled with zeros.
    ///
    /// # Panics
    ///
    /// Panics if `width` or `height` is zero.
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "image dimensions must be non-zero");
        Self {
            width,
            height,
            data: Arc::new(vec![0.0; width * height]),
            moments: Arc::new(OnceLock::new()),
        }
    }

    /// Creates an image by evaluating `f(x, y)` at every pixel.
    pub fn from_fn<F: FnMut(usize, usize) -> f32>(width: usize, height: usize, mut f: F) -> Self {
        let mut img = GrayImage::new(width, height);
        let data = img.pixels_mut();
        for y in 0..height {
            for x in 0..width {
                data[y * width + x] = f(x, y);
            }
        }
        img
    }

    /// Image width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Number of pixels (`width * height`).
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the image has no pixels (never the case for constructed
    /// images; kept for API completeness).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Pixel value at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of bounds.
    pub fn get(&self, x: usize, y: usize) -> f32 {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        self.data[y * self.width + x]
    }

    /// Sets the pixel at `(x, y)`, clamping the value to `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of bounds.
    pub fn set(&mut self, x: usize, y: usize, value: f32) {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        let width = self.width;
        self.pixels_mut()[y * width + x] = value.clamp(0.0, 1.0);
    }

    /// Mutable access to the pixel buffer: unshares it (copy-on-write) and
    /// invalidates the moment cache, since the caller is about to change
    /// pixel values.
    pub(crate) fn pixels_mut(&mut self) -> &mut [f32] {
        match Arc::get_mut(&mut self.moments) {
            // Uniquely owned cache: clearing in place avoids an allocation
            // per mutation (`set` is called per pixel by the renderer).
            Some(cell) => {
                cell.take();
            }
            // The cache is shared with a clone whose pixels stay unchanged;
            // it keeps the old cell, this image starts a fresh one.
            None => self.moments = Arc::new(OnceLock::new()),
        }
        Arc::make_mut(&mut self.data).as_mut_slice()
    }

    /// Borrow of the raw pixel buffer in row-major order.
    pub fn pixels(&self) -> &[f32] {
        &self.data
    }

    /// The cached moments, computing them on first use. Both accumulations
    /// run left-to-right over the row-major buffer — the exact operand order
    /// the NCC and variance paths historically used — so every downstream
    /// consumer keeps bit-identical results.
    fn moments(&self) -> Moments {
        *self.moments.get_or_init(|| {
            if self.data.is_empty() {
                return Moments {
                    mean: 0.0,
                    centered_norm: 0.0,
                };
            }
            let mean = self.data.iter().map(|&v| v as f64).sum::<f64>() / self.data.len() as f64;
            let centered_norm = self
                .data
                .iter()
                .map(|&v| {
                    let d = v as f64 - mean;
                    d * d
                })
                .sum::<f64>();
            Moments {
                mean,
                centered_norm,
            }
        })
    }

    /// Mean pixel intensity.
    pub fn mean(&self) -> f64 {
        self.moments().mean
    }

    /// The centered squared norm `Σ (v − mean)²` of the pixel intensities,
    /// cached alongside [`mean`](Self::mean). This is the self-correlation
    /// term of the NCC denominator; see [`crate::ncc()`].
    pub fn centered_norm(&self) -> f64 {
        self.moments().centered_norm
    }

    /// Population variance of the pixel intensities.
    pub fn variance(&self) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        self.centered_norm() / self.data.len() as f64
    }

    /// Extracts the sub-image covered by `bbox`, clamped to the image bounds.
    ///
    /// Returns `None` when the clamped region is smaller than one pixel.
    pub fn crop(&self, bbox: &BoundingBox) -> Option<GrayImage> {
        let clamped = bbox.clamped(self.width, self.height);
        let x0 = clamped.x.floor() as usize;
        let y0 = clamped.y.floor() as usize;
        let x1 = (clamped.right().ceil() as usize).min(self.width);
        let y1 = (clamped.bottom().ceil() as usize).min(self.height);
        if x1 <= x0 || y1 <= y0 {
            return None;
        }
        Some(GrayImage::from_fn(x1 - x0, y1 - y0, |x, y| {
            self.get(x0 + x, y0 + y)
        }))
    }

    /// Resamples the image to `(width, height)` with nearest-neighbour
    /// interpolation.
    ///
    /// # Panics
    ///
    /// Panics if `width` or `height` is zero.
    pub fn resized(&self, width: usize, height: usize) -> GrayImage {
        assert!(
            width > 0 && height > 0,
            "resize dimensions must be non-zero"
        );
        GrayImage::from_fn(width, height, |x, y| {
            let sx = ((x as f64 + 0.5) / width as f64 * self.width as f64).floor() as usize;
            let sy = ((y as f64 + 0.5) / height as f64 * self.height as f64).floor() as usize;
            self.get(sx.min(self.width - 1), sy.min(self.height - 1))
        })
    }

    /// Adds `delta` to every pixel, clamping to `[0, 1]`.
    pub fn brightened(&self, delta: f32) -> GrayImage {
        GrayImage::from_fn(self.width, self.height, |x, y| {
            (self.get(x, y) + delta).clamp(0.0, 1.0)
        })
    }
}

/// Parameters describing the visual appearance of one rendered frame.
///
/// The renderer is intentionally simple; what matters is that the NCC between
/// consecutive frames drops when the background pattern, target position or
/// lighting change abruptly, mirroring the signal the real system would see.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SceneAppearance {
    /// Identifier of the background pattern (changes the procedural phase).
    pub background_id: u32,
    /// High-frequency texture amplitude in `[0, 1]`; higher means a busier
    /// background that is harder to distinguish the target from.
    pub clutter: f64,
    /// Target/background intensity contrast in `[0, 1]`.
    pub contrast: f64,
    /// Global illumination level in `[0, 1]`.
    pub lighting: f64,
    /// Per-frame sensor-noise amplitude in `[0, 1]`.
    pub noise: f64,
    /// Horizontal camera-shake offset for this frame, as a fraction of the
    /// frame width. Platform vibration and ego-motion shift the background
    /// pattern between consecutive frames, which is what makes the NCC-based
    /// context detector react more strongly on cluttered scenes.
    pub camera_dx: f64,
    /// Vertical camera-shake offset, as a fraction of the frame height.
    pub camera_dy: f64,
}

impl Default for SceneAppearance {
    fn default() -> Self {
        Self {
            background_id: 0,
            clutter: 0.3,
            contrast: 0.7,
            lighting: 0.8,
            noise: 0.02,
            camera_dx: 0.0,
            camera_dy: 0.0,
        }
    }
}

/// Renders a frame: procedural background plus (optionally) the UAV target.
///
/// `target` is the ground-truth bounding box in pixel coordinates; `None`
/// renders a frame without the target (the paper's scenarios contain windows
/// where the UAV leaves the camera's field of view). `seed` controls the
/// deterministic sensor noise so identical calls produce identical pixels.
pub fn render_frame(
    width: usize,
    height: usize,
    appearance: &SceneAppearance,
    target: Option<&BoundingBox>,
    seed: u64,
) -> GrayImage {
    let base = (0.25 + 0.55 * appearance.lighting) as f32;
    let clutter = appearance.clutter as f32;
    let phase = appearance.background_id as f32 * 1.7 + 0.31;
    // The background texture is separable: every trigonometric factor
    // depends on x alone or y alone, so the sin/cos evaluations are hoisted
    // out of the pixel loop into four per-axis tables (`width + height`
    // evaluations instead of `width * height`). The per-pixel expression
    // multiplies the identical factors in the identical order, so the
    // rendered pixels are bit-for-bit the same as the fused form.
    let (mut low_x, mut high_x) = (vec![0.0f32; width], vec![0.0f32; width]);
    for (x, (low, high)) in low_x.iter_mut().zip(high_x.iter_mut()).enumerate() {
        let fx = x as f32 / width as f32 + appearance.camera_dx as f32;
        *low = (fx * 6.3 + phase).sin();
        *high = (fx * 61.0 + phase * 3.0).sin();
    }
    let (mut low_y, mut high_y) = (vec![0.0f32; height], vec![0.0f32; height]);
    for (y, (low, high)) in low_y.iter_mut().zip(high_y.iter_mut()).enumerate() {
        let fy = y as f32 / height as f32 + appearance.camera_dy as f32;
        *low = (fy * 4.7 + phase * 0.5).cos();
        *high = (fy * 53.0 + phase * 2.0).sin();
    }
    // The noise hash mixes its three inputs with independent wrapping
    // multiplies, so the seed term hoists out of the loop entirely, the y
    // term out of each row, and the x terms into a per-frame table. Wrapping
    // u64 multiplication and addition are exact (no rounding), hence
    // associativity/commutativity hold bit-for-bit and the regrouped hash
    // input is the *same integer* the fused per-pixel form produced.
    let noise_amp = appearance.noise as f32;
    let base_h = (seed ^ appearance.background_id as u64).wrapping_mul(HASH_SEED_MUL);
    let hash_x: Vec<u64> = (0..width)
        .map(|x| (x as u64).wrapping_mul(HASH_X_MUL))
        .collect();
    let mut img = GrayImage::new(width, height);
    for (y, row) in img.pixels_mut().chunks_exact_mut(width).enumerate() {
        let row_h = base_h.wrapping_add((y as u64).wrapping_mul(HASH_Y_MUL));
        let (ly, hy) = (low_y[y], high_y[y]);
        for (((px, &lx), &hx), &xh) in row.iter_mut().zip(&low_x).zip(&high_x).zip(&hash_x) {
            // Low-frequency structure unique to the background id.
            let lowf = (lx * ly) * 0.18;
            // High-frequency clutter texture.
            let highf = (hx * hy) * 0.30;
            let noise = finish_hash(row_h.wrapping_add(xh)) * noise_amp;
            *px = (base + lowf + clutter * highf + noise).clamp(0.0, 1.0);
        }
    }

    if let Some(bbox) = target {
        draw_target(&mut img, bbox, appearance);
    }
    img
}

/// Draws the UAV target as a cross-shaped blob whose intensity offset from
/// the background is proportional to the contrast parameter.
fn draw_target(img: &mut GrayImage, bbox: &BoundingBox, appearance: &SceneAppearance) {
    let clamped = bbox.clamped(img.width(), img.height());
    if clamped.is_empty() {
        return;
    }
    let (cx, cy) = clamped.center();
    let delta = (0.25 + 0.6 * appearance.contrast) as f32;
    let x0 = clamped.x.floor().max(0.0) as usize;
    let y0 = clamped.y.floor().max(0.0) as usize;
    let x1 = (clamped.right().ceil() as usize).min(img.width());
    let y1 = (clamped.bottom().ceil() as usize).min(img.height());
    for y in y0..y1 {
        for x in x0..x1 {
            let dx = (x as f64 + 0.5 - cx).abs() / (clamped.w / 2.0).max(0.5);
            let dy = (y as f64 + 0.5 - cy).abs() / (clamped.h / 2.0).max(0.5);
            // Cross/rotor shape: bright body along both axes, dimmer corners.
            let body = if dx < 0.35 || dy < 0.35 { 1.0 } else { 0.55 };
            if dx <= 1.0 && dy <= 1.0 {
                let falloff = (1.0 - (dx.max(dy)).powi(2)) as f32;
                let value = img.get(x, y) - delta * body as f32 * falloff;
                img.set(x, y, value);
            }
        }
    }
}

/// The seed/x/y mixing multipliers of the noise hash (splitmix64's
/// golden-ratio increment and finalizer constants). Named so
/// [`render_frame`]'s hoisted row/column terms provably feed
/// [`finish_hash`] the same integer [`hash_noise`] would build.
const HASH_SEED_MUL: u64 = 0x9E37_79B9_7F4A_7C15;
const HASH_X_MUL: u64 = 0xBF58_476D_1CE4_E5B9;
const HASH_Y_MUL: u64 = 0x94D0_49BB_1331_11EB;

/// Deterministic pseudo-random value in `[-0.5, 0.5]` derived from pixel
/// coordinates and a seed (splitmix-style hash), used for sensor noise so the
/// renderer does not need to thread an RNG through every pixel. This fused
/// form is the specification; [`render_frame`] inlines it with the seed/y/x
/// terms hoisted, and the test suite pins the two bit-identical.
#[cfg(test)]
fn hash_noise(x: u64, y: u64, seed: u64) -> f32 {
    finish_hash(
        seed.wrapping_mul(HASH_SEED_MUL)
            .wrapping_add(x.wrapping_mul(HASH_X_MUL))
            .wrapping_add(y.wrapping_mul(HASH_Y_MUL)),
    )
}

/// The avalanche + `[-0.5, 0.5]` mapping half of [`hash_noise`], split out so
/// the renderer can feed it pre-mixed row/column terms.
fn finish_hash(mut h: u64) -> f32 {
    h ^= h >> 30;
    h = h.wrapping_mul(HASH_X_MUL);
    h ^= h >> 27;
    h = h.wrapping_mul(HASH_Y_MUL);
    h ^= h >> 31;
    // `h as f64 as f32` is bit-identical to `h as f32` for every u64: the
    // intermediate f64 rounding is innocuous because f64's 53 mantissa bits
    // exceed 2 * 24 + 2 (the classical double-rounding bound for f32's 24).
    // It exists purely for speed — scalar u64 -> f32 on baseline x86-64
    // branches on the (here: uniformly random) sign bit and eats a ~50%
    // misprediction per pixel, while u64 -> f64 lowers branch-free. The
    // divisor 2^64 is a power of two, so the division is an exact multiply.
    (h as f64 as f32 / u64::MAX as f32) - 0.5
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_size_image_panics() {
        let _ = GrayImage::new(0, 4);
    }

    #[test]
    fn from_fn_and_get_set() {
        let mut img = GrayImage::from_fn(3, 2, |x, y| (x * 10 + y) as f32 / 100.0);
        assert_eq!(img.get(2, 1), 0.21);
        img.set(0, 0, 2.0);
        assert_eq!(img.get(0, 0), 1.0, "set clamps to [0,1]");
        assert_eq!(img.len(), 6);
        assert!(!img.is_empty());
    }

    #[test]
    fn mean_and_variance_of_constant_image() {
        let img = GrayImage::from_fn(8, 8, |_, _| 0.5);
        assert!((img.mean() - 0.5).abs() < 1e-9);
        assert!(img.variance() < 1e-12);
    }

    #[test]
    fn crop_inside_bounds() {
        let img = GrayImage::from_fn(10, 10, |x, y| if x >= 5 && y >= 5 { 1.0 } else { 0.0 });
        let crop = img
            .crop(&BoundingBox::new(5.0, 5.0, 5.0, 5.0))
            .expect("crop exists");
        assert_eq!(crop.width(), 5);
        assert_eq!(crop.height(), 5);
        assert!((crop.mean() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn crop_outside_bounds_is_none() {
        let img = GrayImage::new(10, 10);
        assert!(img.crop(&BoundingBox::new(50.0, 50.0, 5.0, 5.0)).is_none());
    }

    #[test]
    fn resized_preserves_constant_image() {
        let img = GrayImage::from_fn(16, 16, |_, _| 0.25);
        let small = img.resized(4, 4);
        assert_eq!(small.width(), 4);
        assert!((small.mean() - 0.25).abs() < 1e-6);
    }

    #[test]
    fn render_is_deterministic() {
        let appearance = SceneAppearance::default();
        let bbox = BoundingBox::from_center(32.0, 32.0, 12.0, 10.0);
        let a = render_frame(64, 64, &appearance, Some(&bbox), 42);
        let b = render_frame(64, 64, &appearance, Some(&bbox), 42);
        assert_eq!(a, b);
    }

    #[test]
    fn render_changes_with_background_id() {
        let mut a_app = SceneAppearance::default();
        let mut b_app = SceneAppearance::default();
        a_app.background_id = 0;
        b_app.background_id = 7;
        let a = render_frame(32, 32, &a_app, None, 1);
        let b = render_frame(32, 32, &b_app, None, 1);
        assert_ne!(a, b, "different backgrounds must produce different pixels");
    }

    #[test]
    fn target_darkens_its_region() {
        let appearance = SceneAppearance {
            clutter: 0.0,
            noise: 0.0,
            contrast: 1.0,
            ..SceneAppearance::default()
        };
        let bbox = BoundingBox::from_center(16.0, 16.0, 10.0, 10.0);
        let with = render_frame(32, 32, &appearance, Some(&bbox), 3);
        let without = render_frame(32, 32, &appearance, None, 3);
        let inside_with = with.crop(&bbox).expect("crop").mean();
        let inside_without = without.crop(&bbox).expect("crop").mean();
        assert!(
            inside_with < inside_without - 0.1,
            "target should darken pixels: {inside_with} vs {inside_without}"
        );
    }

    #[test]
    fn brightened_clamps() {
        let img = GrayImage::from_fn(4, 4, |_, _| 0.9).brightened(0.5);
        assert!((img.mean() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn hash_noise_range_and_determinism() {
        for i in 0..100u64 {
            let v = hash_noise(i, i * 3, 7);
            assert!((-0.5..=0.5).contains(&v));
            assert_eq!(v, hash_noise(i, i * 3, 7));
        }
    }

    #[test]
    fn hoisted_render_noise_is_bit_identical_to_hash_noise() {
        // `render_frame` regroups the hash input as
        // `(seed·S + y·Y) + x·X` instead of the fused `seed·S + x·X + y·Y`;
        // wrapping u64 arithmetic is exact, so both build the same integer
        // and therefore the same f32. Locked here per pixel so a future
        // "simplification" of either side cannot silently change frames.
        for seed in [0u64, 7, 0xDEAD_BEEF, u64::MAX] {
            let base_h = seed.wrapping_mul(HASH_SEED_MUL);
            for y in 0..24u64 {
                let row_h = base_h.wrapping_add(y.wrapping_mul(HASH_Y_MUL));
                for x in 0..24u64 {
                    let hoisted = finish_hash(row_h.wrapping_add(x.wrapping_mul(HASH_X_MUL)));
                    assert_eq!(hoisted.to_bits(), hash_noise(x, y, seed).to_bits());
                }
            }
        }
    }

    #[test]
    fn u64_to_f32_via_f64_is_bit_identical() {
        // The claim `finish_hash` relies on: converting u64 -> f64 -> f32
        // equals the direct u64 -> f32 rounding (innocuous double rounding,
        // 53 >= 2 * 24 + 2). Spot-checked across magnitudes and around the
        // f32 precision boundaries; a splitmix walk covers random patterns.
        let mut h = 0x243F_6A88_85A3_08D3u64;
        for _ in 0..10_000 {
            h ^= h >> 30;
            h = h.wrapping_mul(HASH_X_MUL);
            assert_eq!((h as f32).to_bits(), (h as f64 as f32).to_bits());
        }
        for base in [0u64, 1 << 24, 1 << 25, 1 << 53, 1 << 63, u64::MAX - 64] {
            for d in 0..=64u64 {
                let v = base.wrapping_add(d);
                assert_eq!((v as f32).to_bits(), (v as f64 as f32).to_bits());
            }
        }
    }
}
