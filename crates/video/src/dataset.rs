//! Characterization / validation datasets.
//!
//! SHIFT's offline characterization pass and confidence-graph construction
//! rely solely on a validation subset of the training data (2,500 images in
//! the paper). This module generates the synthetic stand-in: a set of frames
//! whose contexts cover the full difficulty spectrum, produced from short
//! randomized mini-scenarios so that the validation distribution resembles —
//! but is not identical to — the evaluation scenarios.

use crate::context::FrameContext;
use crate::scenario::{BackgroundSegment, Environment, Scenario, Window};
use crate::stream::Frame;
use crate::trajectory::{Trajectory, Waypoint};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Default number of validation samples, mirroring the paper's 2,500-image
/// validation split (kept smaller by default so the full experiment suite
/// runs in seconds; the experiments crate scales it back up where needed).
pub const DEFAULT_VALIDATION_SAMPLES: usize = 600;

/// A set of frames used for offline model characterization and
/// confidence-graph construction.
///
/// ```
/// use shift_video::CharacterizationDataset;
///
/// let dataset = CharacterizationDataset::generate(64, 7);
/// assert_eq!(dataset.len(), 64);
/// assert!(dataset.frames().iter().any(|f| f.context.difficulty() > 0.5));
/// assert!(dataset.frames().iter().any(|f| f.context.difficulty() < 0.3));
/// ```
#[derive(Debug, Clone)]
pub struct CharacterizationDataset {
    frames: Vec<Frame>,
    seed: u64,
}

impl CharacterizationDataset {
    /// Generates a dataset with `samples` frames from seed `seed`.
    ///
    /// Samples are drawn from many short synthetic clips with randomized
    /// trajectories, backgrounds and occlusions, stratified so that easy,
    /// medium and hard contexts are all represented.
    pub fn generate(samples: usize, seed: u64) -> Self {
        let samples = samples.max(1);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut frames = Vec::with_capacity(samples);
        let clip_len = 8usize;
        let mut clip_id = 0u64;
        while frames.len() < samples {
            // Stratify difficulty: cycle target bands so the dataset covers
            // the whole spectrum regardless of sample count.
            let band = (clip_id % 4) as f64 / 4.0;
            let scenario = random_clip(&mut rng, seed ^ clip_id, band, clip_len);
            for frame in scenario.stream() {
                if frames.len() >= samples {
                    break;
                }
                frames.push(frame);
            }
            clip_id += 1;
        }
        Self { frames, seed }
    }

    /// Generates the default-sized validation dataset.
    pub fn default_validation(seed: u64) -> Self {
        Self::generate(DEFAULT_VALIDATION_SAMPLES, seed)
    }

    /// The frames of the dataset.
    pub fn frames(&self) -> &[Frame] {
        &self.frames
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Whether the dataset is empty (never true for generated datasets).
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Seed the dataset was generated from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Iterator over frames.
    pub fn iter(&self) -> std::slice::Iter<'_, Frame> {
        self.frames.iter()
    }

    /// Mean difficulty of the dataset's contexts — useful to sanity-check the
    /// stratification.
    pub fn mean_difficulty(&self) -> f64 {
        if self.frames.is_empty() {
            return 0.0;
        }
        self.frames
            .iter()
            .map(|f| f.context.difficulty())
            .sum::<f64>()
            / self.frames.len() as f64
    }

    /// Contexts of all frames, in order.
    pub fn contexts(&self) -> Vec<FrameContext> {
        self.frames.iter().map(|f| f.context).collect()
    }
}

impl<'a> IntoIterator for &'a CharacterizationDataset {
    type Item = &'a Frame;
    type IntoIter = std::slice::Iter<'a, Frame>;

    fn into_iter(self) -> Self::IntoIter {
        self.frames.iter()
    }
}

/// Builds one short randomized clip whose difficulty is centred on `band`.
fn random_clip(rng: &mut StdRng, seed: u64, band: f64, frames: usize) -> Scenario {
    let spread = 0.25;
    let level = |rng: &mut StdRng| (band + rng.gen_range(0.0..spread)).clamp(0.0, 1.0);
    let distance = level(rng);
    let clutter = level(rng);
    let contrast = 1.0 - level(rng) * 0.8;
    let lighting = 1.0 - level(rng) * 0.6;
    let environment = if rng.gen_bool(0.4) {
        Environment::Indoor
    } else {
        Environment::Outdoor
    };
    let x0: f64 = rng.gen_range(0.1..0.9);
    let y0: f64 = rng.gen_range(0.2..0.8);
    let x1 = (x0 + rng.gen_range(-0.3..0.3f64)).clamp(0.05, 0.95);
    let y1 = (y0 + rng.gen_range(-0.2..0.2f64)).clamp(0.05, 0.95);
    let trajectory = Trajectory::new(vec![
        Waypoint::new(0.0, x0, y0, distance),
        Waypoint::new(
            1.0,
            x1,
            y1,
            (distance + rng.gen_range(-0.1..0.1)).clamp(0.0, 1.0),
        ),
    ]);
    let occlusions = if rng.gen_bool(0.15) {
        vec![Window::new(0.3, 0.6, rng.gen_range(0.2..0.7))]
    } else {
        vec![]
    };
    let absences = if rng.gen_bool(0.05) {
        vec![Window::new(0.7, 1.0, 1.0)]
    } else {
        vec![]
    };
    Scenario::new(
        format!("characterization-clip-{seed}"),
        environment,
        frames,
        trajectory,
        vec![BackgroundSegment::new(0.0, clutter, contrast, lighting)],
        occlusions,
        absences,
        seed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_produces_requested_count() {
        let d = CharacterizationDataset::generate(100, 1);
        assert_eq!(d.len(), 100);
        assert!(!d.is_empty());
    }

    #[test]
    fn generation_is_deterministic() {
        let a = CharacterizationDataset::generate(50, 9);
        let b = CharacterizationDataset::generate(50, 9);
        assert_eq!(a.frames(), b.frames());
    }

    #[test]
    fn different_seeds_differ() {
        let a = CharacterizationDataset::generate(30, 1);
        let b = CharacterizationDataset::generate(30, 2);
        assert_ne!(a.frames(), b.frames());
    }

    #[test]
    fn difficulty_spectrum_is_covered() {
        let d = CharacterizationDataset::generate(200, 3);
        let difficulties: Vec<f64> = d.iter().map(|f| f.context.difficulty()).collect();
        let easy = difficulties.iter().filter(|&&x| x < 0.3).count();
        let hard = difficulties.iter().filter(|&&x| x > 0.6).count();
        assert!(easy > 10, "expected easy samples, got {easy}");
        assert!(hard > 10, "expected hard samples, got {hard}");
        let mean = d.mean_difficulty();
        assert!((0.2..=0.8).contains(&mean), "mean difficulty {mean}");
    }

    #[test]
    fn minimum_one_sample() {
        let d = CharacterizationDataset::generate(0, 5);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn into_iterator_yields_all_frames() {
        let d = CharacterizationDataset::generate(16, 4);
        let count = (&d).into_iter().count();
        assert_eq!(count, 16);
        assert_eq!(d.contexts().len(), 16);
    }

    #[test]
    fn default_validation_size() {
        let d = CharacterizationDataset::default_validation(11);
        assert_eq!(d.len(), DEFAULT_VALIDATION_SAMPLES);
        assert_eq!(d.seed(), 11);
    }
}
