//! # shift-video
//!
//! Synthetic frame-stream, scenario and dataset substrate for the SHIFT
//! reproduction (Davis & Belviranli, *Context-aware Multi-Model Object
//! Detection for Diversely Heterogeneous Compute Systems*, DATE 2024).
//!
//! The paper evaluates on a UAV (drone) detection dataset and six recorded
//! evaluation videos. Neither is redistributable, so this crate provides the
//! closest synthetic equivalent: a deterministic generator of grayscale frame
//! streams with ground-truth bounding boxes and a continuous *frame context*
//! (target distance, background clutter, contrast, motion, occlusion,
//! lighting). Every consumer of the paper's pipeline — normalized
//! cross-correlation (NCC), IoU scoring, confidence-graph construction and
//! the SHIFT scheduler — operates on these streams exactly as it would on
//! camera frames.
//!
//! ## Quick example
//!
//! ```
//! use shift_video::scenario::Scenario;
//!
//! let scenario = Scenario::scenario_1();
//! let mut frames = 0;
//! for frame in scenario.stream().take(10) {
//!     assert_eq!(frame.image.width(), scenario.frame_width());
//!     frames += 1;
//! }
//! assert_eq!(frames, 10);
//! ```

pub mod bbox;
pub mod context;
pub mod dataset;
pub mod generator;
pub mod image;
pub mod ncc;
pub mod scenario;
pub mod stream;
pub mod trajectory;

pub use bbox::BoundingBox;
pub use context::FrameContext;
pub use dataset::CharacterizationDataset;
pub use generator::{
    Difficulty, ScenarioGenerator, ScenarioLibrary, ScenarioSpec, TrajectoryFamily, WeatherRegime,
};
pub use image::GrayImage;
pub use ncc::{frame_similarity, ncc, ncc_regions, RegionNcc};
pub use scenario::{Environment, Scenario};
pub use stream::{Frame, FrameStream};
pub use trajectory::{Trajectory, Waypoint};

/// Error type for the video substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VideoError {
    /// Two images with mismatched dimensions were passed to an operation that
    /// requires identical sizes.
    DimensionMismatch {
        /// Dimensions of the first operand (width, height).
        lhs: (usize, usize),
        /// Dimensions of the second operand (width, height).
        rhs: (usize, usize),
    },
    /// An image with zero width or height was requested.
    EmptyImage,
    /// A scenario was configured with no frames.
    EmptyScenario,
}

impl std::fmt::Display for VideoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VideoError::DimensionMismatch { lhs, rhs } => write!(
                f,
                "image dimensions do not match: {}x{} vs {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            VideoError::EmptyImage => write!(f, "image must have non-zero dimensions"),
            VideoError::EmptyScenario => write!(f, "scenario must contain at least one frame"),
        }
    }
}

impl std::error::Error for VideoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_nonempty() {
        let err = VideoError::DimensionMismatch {
            lhs: (4, 4),
            rhs: (8, 8),
        };
        assert!(err.to_string().contains("4x4"));
        assert!(!VideoError::EmptyImage.to_string().is_empty());
        assert!(!VideoError::EmptyScenario.to_string().is_empty());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<VideoError>();
    }
}
