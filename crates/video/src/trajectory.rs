//! Parametric UAV trajectories.
//!
//! A trajectory maps normalized video time `t in [0, 1]` to a normalized
//! image position `(x, y) in [0, 1]^2` and a normalized camera distance.
//! The paper's scenarios move the drone across backgrounds at varying or
//! fixed distances; these builders produce the equivalent motion profiles.

use serde::{Deserialize, Serialize};

/// A single key point of a piecewise-linear trajectory.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Waypoint {
    /// Normalized time in `[0, 1]`.
    pub t: f64,
    /// Normalized horizontal position in `[0, 1]` (0 = left edge).
    pub x: f64,
    /// Normalized vertical position in `[0, 1]` (0 = top edge).
    pub y: f64,
    /// Normalized distance from the camera in `[0, 1]` (0 = close).
    pub distance: f64,
}

impl Waypoint {
    /// Creates a waypoint, clamping every coordinate to `[0, 1]`.
    pub fn new(t: f64, x: f64, y: f64, distance: f64) -> Self {
        Self {
            t: t.clamp(0.0, 1.0),
            x: x.clamp(0.0, 1.0),
            y: y.clamp(0.0, 1.0),
            distance: distance.clamp(0.0, 1.0),
        }
    }
}

/// A piecewise-linear trajectory through waypoints sorted by time.
///
/// ```
/// use shift_video::{Trajectory, Waypoint};
///
/// let path = Trajectory::new(vec![
///     Waypoint::new(0.0, 0.0, 0.5, 0.2),
///     Waypoint::new(1.0, 1.0, 0.5, 0.8),
/// ]);
/// let (x, _y, d) = path.sample(0.5);
/// assert!((x - 0.5).abs() < 1e-9);
/// assert!((d - 0.5).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trajectory {
    waypoints: Vec<Waypoint>,
}

impl Trajectory {
    /// Builds a trajectory from waypoints; they are sorted by time. An empty
    /// waypoint list yields a stationary centre hover.
    pub fn new(mut waypoints: Vec<Waypoint>) -> Self {
        if waypoints.is_empty() {
            waypoints.push(Waypoint::new(0.0, 0.5, 0.5, 0.3));
        }
        waypoints.sort_by(|a, b| a.t.partial_cmp(&b.t).expect("waypoint times are finite"));
        Self { waypoints }
    }

    /// The waypoints, sorted by time.
    pub fn waypoints(&self) -> &[Waypoint] {
        &self.waypoints
    }

    /// Samples the trajectory at normalized time `t`, returning
    /// `(x, y, distance)` with linear interpolation between waypoints and
    /// clamping outside the waypoint range.
    pub fn sample(&self, t: f64) -> (f64, f64, f64) {
        let t = t.clamp(0.0, 1.0);
        let first = self.waypoints.first().expect("at least one waypoint");
        let last = self.waypoints.last().expect("at least one waypoint");
        if t <= first.t {
            return (first.x, first.y, first.distance);
        }
        if t >= last.t {
            return (last.x, last.y, last.distance);
        }
        for pair in self.waypoints.windows(2) {
            let (a, b) = (pair[0], pair[1]);
            if t >= a.t && t <= b.t {
                let span = (b.t - a.t).max(1e-12);
                let f = (t - a.t) / span;
                return (
                    a.x + f * (b.x - a.x),
                    a.y + f * (b.y - a.y),
                    a.distance + f * (b.distance - a.distance),
                );
            }
        }
        (last.x, last.y, last.distance)
    }

    /// Approximate instantaneous normalized speed at time `t` (finite
    /// difference over `dt = 1e-3` of the image-plane position).
    pub fn speed(&self, t: f64) -> f64 {
        let dt = 1e-3;
        let (x0, y0, _) = self.sample((t - dt).max(0.0));
        let (x1, y1, _) = self.sample((t + dt).min(1.0));
        ((x1 - x0).powi(2) + (y1 - y0).powi(2)).sqrt() / (2.0 * dt)
    }

    /// A stationary hover at the given position/distance.
    pub fn hover(x: f64, y: f64, distance: f64) -> Self {
        Self::new(vec![Waypoint::new(0.0, x, y, distance)])
    }

    /// A straight horizontal sweep from the left edge to the right edge at a
    /// fixed distance — the motion used by the paper's Scenario 2.
    pub fn horizontal_sweep(y: f64, distance: f64) -> Self {
        Self::new(vec![
            Waypoint::new(0.0, 0.02, y, distance),
            Waypoint::new(1.0, 0.98, y, distance),
        ])
    }

    /// An out-and-back pass: the target recedes from the camera to
    /// `far_distance`, traverses laterally while far, then returns — the
    /// motion of the paper's Scenario 1 ("varying distances").
    pub fn approach_retreat(far_distance: f64) -> Self {
        Self::new(vec![
            Waypoint::new(0.0, 0.25, 0.50, 0.15),
            Waypoint::new(0.25, 0.40, 0.45, far_distance),
            Waypoint::new(0.50, 0.70, 0.55, far_distance),
            Waypoint::new(0.75, 0.60, 0.50, 0.45),
            Waypoint::new(1.0, 0.45, 0.50, 0.12),
        ])
    }

    /// A lawnmower / serpentine pattern covering the frame, used for
    /// characterization-style coverage of positions.
    pub fn lawnmower(rows: usize, distance: f64) -> Self {
        let rows = rows.max(1);
        let mut waypoints = Vec::with_capacity(rows * 2);
        for row in 0..rows {
            let y = (row as f64 + 0.5) / rows as f64;
            let t0 = row as f64 / rows as f64;
            let t1 = (row as f64 + 1.0) / rows as f64;
            if row % 2 == 0 {
                waypoints.push(Waypoint::new(t0, 0.05, y, distance));
                waypoints.push(Waypoint::new(t1, 0.95, y, distance));
            } else {
                waypoints.push(Waypoint::new(t0, 0.95, y, distance));
                waypoints.push(Waypoint::new(t1, 0.05, y, distance));
            }
        }
        Self::new(waypoints)
    }

    /// A dive toward the camera followed by a climb away from it while
    /// drifting laterally; produces strong size changes of the target.
    pub fn dive_and_climb() -> Self {
        Self::new(vec![
            Waypoint::new(0.0, 0.30, 0.30, 0.70),
            Waypoint::new(0.35, 0.50, 0.60, 0.10),
            Waypoint::new(0.65, 0.65, 0.55, 0.20),
            Waypoint::new(1.0, 0.85, 0.35, 0.85),
        ])
    }

    /// A circular orbit around a center point at a fixed distance — the
    /// surveillance pattern a quadcopter flies around a point of interest.
    /// `laps` full revolutions are completed over the trajectory.
    pub fn orbit(center_x: f64, center_y: f64, radius: f64, distance: f64, laps: usize) -> Self {
        let laps = laps.max(1);
        let segments = 16 * laps;
        let waypoints = (0..=segments)
            .map(|i| {
                let t = i as f64 / segments as f64;
                let angle = t * laps as f64 * std::f64::consts::TAU;
                Waypoint::new(
                    t,
                    (center_x + radius * angle.cos()).clamp(0.02, 0.98),
                    (center_y + radius * angle.sin()).clamp(0.02, 0.98),
                    distance,
                )
            })
            .collect();
        Self::new(waypoints)
    }

    /// A figure-eight (lemniscate) pattern centered in the frame, with the
    /// target nearer to the camera on the left lobe than on the right lobe —
    /// it exercises both position and apparent-size changes simultaneously.
    pub fn figure_eight(near_distance: f64, far_distance: f64) -> Self {
        let segments = 48;
        let waypoints = (0..=segments)
            .map(|i| {
                let t = i as f64 / segments as f64;
                let angle = t * std::f64::consts::TAU;
                let x = 0.5 + 0.38 * angle.sin();
                let y = 0.5 + 0.30 * angle.sin() * angle.cos();
                let blend = 0.5 * (1.0 + angle.cos());
                let distance = far_distance + (near_distance - far_distance) * blend;
                Waypoint::new(t, x.clamp(0.02, 0.98), y.clamp(0.02, 0.98), distance)
            })
            .collect();
        Self::new(waypoints)
    }

    /// A hover with small deterministic position jitter, modeling the station
    /// holding of a real quadcopter in light wind.
    pub fn hover_jitter(x: f64, y: f64, distance: f64, amplitude: f64) -> Self {
        let segments = 24;
        let amplitude = amplitude.clamp(0.0, 0.2);
        let waypoints = (0..=segments)
            .map(|i| {
                let t = i as f64 / segments as f64;
                let phase = t * std::f64::consts::TAU;
                let dx = amplitude * (3.0 * phase).sin();
                let dy = amplitude * (2.0 * phase).cos() * 0.6;
                Waypoint::new(
                    t,
                    (x + dx).clamp(0.02, 0.98),
                    (y + dy).clamp(0.02, 0.98),
                    distance,
                )
            })
            .collect();
        Self::new(waypoints)
    }
}

impl Default for Trajectory {
    fn default() -> Self {
        Self::hover(0.5, 0.5, 0.3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_interpolates_linearly() {
        let t = Trajectory::new(vec![
            Waypoint::new(0.0, 0.0, 0.0, 0.0),
            Waypoint::new(1.0, 1.0, 1.0, 1.0),
        ]);
        let (x, y, d) = t.sample(0.25);
        assert!((x - 0.25).abs() < 1e-12);
        assert!((y - 0.25).abs() < 1e-12);
        assert!((d - 0.25).abs() < 1e-12);
    }

    #[test]
    fn sample_clamps_outside_range() {
        let t = Trajectory::horizontal_sweep(0.5, 0.4);
        assert_eq!(t.sample(-1.0), t.sample(0.0));
        assert_eq!(t.sample(2.0), t.sample(1.0));
    }

    #[test]
    fn empty_waypoints_become_hover() {
        let t = Trajectory::new(vec![]);
        let (x, y, _) = t.sample(0.7);
        assert_eq!((x, y), (0.5, 0.5));
    }

    #[test]
    fn waypoints_are_sorted_by_time() {
        let t = Trajectory::new(vec![
            Waypoint::new(0.8, 0.8, 0.5, 0.2),
            Waypoint::new(0.2, 0.2, 0.5, 0.2),
        ]);
        assert!(t.waypoints()[0].t <= t.waypoints()[1].t);
    }

    #[test]
    fn hover_has_zero_speed() {
        let t = Trajectory::hover(0.3, 0.4, 0.5);
        assert!(t.speed(0.5) < 1e-9);
    }

    #[test]
    fn sweep_has_positive_speed() {
        let t = Trajectory::horizontal_sweep(0.5, 0.4);
        assert!(t.speed(0.5) > 0.5);
    }

    #[test]
    fn approach_retreat_returns_close() {
        let t = Trajectory::approach_retreat(0.9);
        let (_, _, d_start) = t.sample(0.0);
        let (_, _, d_mid) = t.sample(0.4);
        let (_, _, d_end) = t.sample(1.0);
        assert!(d_mid > d_start);
        assert!(d_end < d_mid);
    }

    #[test]
    fn lawnmower_stays_in_bounds() {
        let t = Trajectory::lawnmower(4, 0.3);
        for i in 0..=50 {
            let (x, y, d) = t.sample(i as f64 / 50.0);
            assert!((0.0..=1.0).contains(&x));
            assert!((0.0..=1.0).contains(&y));
            assert!((0.0..=1.0).contains(&d));
        }
    }

    #[test]
    fn waypoint_constructor_clamps() {
        let w = Waypoint::new(2.0, -1.0, 3.0, -4.0);
        assert_eq!(w.t, 1.0);
        assert_eq!(w.x, 0.0);
        assert_eq!(w.y, 1.0);
        assert_eq!(w.distance, 0.0);
    }

    #[test]
    fn orbit_stays_on_the_circle_and_closes() {
        let t = Trajectory::orbit(0.5, 0.5, 0.25, 0.4, 2);
        let (x0, y0, d0) = t.sample(0.0);
        let (x1, y1, d1) = t.sample(1.0);
        assert!(
            (x0 - x1).abs() < 0.02 && (y0 - y1).abs() < 0.02,
            "orbit closes on itself"
        );
        assert_eq!(d0, d1);
        for i in 0..=64 {
            let (x, y, d) = t.sample(i as f64 / 64.0);
            let r = ((x - 0.5).powi(2) + (y - 0.5).powi(2)).sqrt();
            assert!(r < 0.27, "radius {r} exceeds the orbit");
            assert!((d - 0.4).abs() < 1e-12);
        }
    }

    #[test]
    fn figure_eight_varies_both_position_and_distance() {
        let t = Trajectory::figure_eight(0.1, 0.7);
        let mut min_x: f64 = 1.0;
        let mut max_x: f64 = 0.0;
        let mut min_d: f64 = 1.0;
        let mut max_d: f64 = 0.0;
        for i in 0..=100 {
            let (x, _, d) = t.sample(i as f64 / 100.0);
            min_x = min_x.min(x);
            max_x = max_x.max(x);
            min_d = min_d.min(d);
            max_d = max_d.max(d);
        }
        assert!(
            max_x - min_x > 0.5,
            "the eight should span most of the frame width"
        );
        assert!(max_d - min_d > 0.4, "the lobes should differ in distance");
    }

    #[test]
    fn hover_jitter_stays_near_the_hover_point() {
        let t = Trajectory::hover_jitter(0.5, 0.5, 0.3, 0.05);
        for i in 0..=60 {
            let (x, y, d) = t.sample(i as f64 / 60.0);
            assert!((x - 0.5).abs() <= 0.051);
            assert!((y - 0.5).abs() <= 0.051);
            assert_eq!(d, 0.3);
        }
        // Zero amplitude degenerates to a plain hover.
        let still = Trajectory::hover_jitter(0.4, 0.6, 0.2, 0.0);
        let (x, y, _) = still.sample(0.37);
        assert!((x - 0.4).abs() < 1e-12 && (y - 0.6).abs() < 1e-12);
    }

    #[test]
    fn jitter_amplitude_is_clamped() {
        let t = Trajectory::hover_jitter(0.5, 0.5, 0.3, 5.0);
        for i in 0..=40 {
            let (x, y, _) = t.sample(i as f64 / 40.0);
            assert!((0.0..=1.0).contains(&x));
            assert!((0.0..=1.0).contains(&y));
        }
    }
}
