//! Evaluation scenarios.
//!
//! The paper evaluates SHIFT on six videos (two indoor, four outdoor) of
//! 500–2,500 frames each, in which the target UAV appears at varying
//! distances, crosses distinct backgrounds and occasionally leaves the
//! camera's field of view. [`Scenario`] encodes the same structure: a
//! trajectory, a sequence of background segments with their own clutter,
//! contrast and lighting, and explicit occlusion / out-of-view windows.

use crate::bbox::BoundingBox;
use crate::context::FrameContext;
use crate::image::SceneAppearance;
use crate::stream::FrameStream;
use crate::trajectory::Trajectory;
use serde::{Deserialize, Serialize};

/// Whether a scenario was captured indoors or outdoors. Outdoor scenes have
/// stronger lighting variation and longer target distances.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Environment {
    /// Indoor capture: short distances, controlled lighting.
    Indoor,
    /// Outdoor capture: long distances, variable lighting, busy backgrounds.
    Outdoor,
}

impl std::fmt::Display for Environment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Environment::Indoor => write!(f, "indoor"),
            Environment::Outdoor => write!(f, "outdoor"),
        }
    }
}

impl std::str::FromStr for Environment {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "indoor" => Ok(Environment::Indoor),
            "outdoor" => Ok(Environment::Outdoor),
            other => Err(format!("unknown environment {other:?}")),
        }
    }
}

/// One background segment of a scenario: from `start` (fraction of the video)
/// until the next segment begins, the scene uses these appearance parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BackgroundSegment {
    /// Normalized start time of the segment in `[0, 1]`.
    pub start: f64,
    /// Background clutter amplitude in `[0, 1]`.
    pub clutter: f64,
    /// Target/background contrast in `[0, 1]`.
    pub contrast: f64,
    /// Illumination quality in `[0, 1]`.
    pub lighting: f64,
}

impl BackgroundSegment {
    /// Creates a segment with all parameters clamped to `[0, 1]`.
    pub fn new(start: f64, clutter: f64, contrast: f64, lighting: f64) -> Self {
        Self {
            start: start.clamp(0.0, 1.0),
            clutter: clutter.clamp(0.0, 1.0),
            contrast: contrast.clamp(0.0, 1.0),
            lighting: lighting.clamp(0.0, 1.0),
        }
    }
}

/// A normalized time window `[start, end)` with an associated magnitude,
/// used for occlusion and out-of-view intervals.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Window {
    /// Normalized start of the window.
    pub start: f64,
    /// Normalized end of the window.
    pub end: f64,
    /// Magnitude (e.g. occlusion fraction) applied inside the window.
    pub amount: f64,
}

impl Window {
    /// Creates a window; `start`/`end` are clamped and ordered.
    pub fn new(start: f64, end: f64, amount: f64) -> Self {
        let s = start.clamp(0.0, 1.0);
        let e = end.clamp(0.0, 1.0);
        Self {
            start: s.min(e),
            end: s.max(e),
            amount: amount.clamp(0.0, 1.0),
        }
    }

    /// Whether normalized time `t` falls inside the window.
    pub fn contains(&self, t: f64) -> bool {
        t >= self.start && t < self.end
    }
}

/// A complete synthetic evaluation video.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    name: String,
    environment: Environment,
    num_frames: usize,
    frame_width: usize,
    frame_height: usize,
    trajectory: Trajectory,
    backgrounds: Vec<BackgroundSegment>,
    occlusions: Vec<Window>,
    absences: Vec<Window>,
    /// Per-frame camera-shake amplitude as a fraction of the frame size.
    /// Outdoor aerial footage shakes noticeably more than indoor captures.
    camera_shake: f64,
    seed: u64,
}

/// Default rendered frame edge length. Kept deliberately small (the NCC and
/// renderer are O(pixels) per frame and the experiments process hundreds of
/// thousands of frames).
pub const DEFAULT_FRAME_SIZE: usize = 64;

/// Largest target box edge (in pixels) when the UAV is at distance 0.
pub const MAX_TARGET_FRACTION: f64 = 0.45;
/// Smallest target box edge fraction when the UAV is at distance 1.
pub const MIN_TARGET_FRACTION: f64 = 0.05;

impl Scenario {
    /// Creates a scenario from its parts.
    ///
    /// # Panics
    ///
    /// Panics if `num_frames` is zero or the background list is empty.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: impl Into<String>,
        environment: Environment,
        num_frames: usize,
        trajectory: Trajectory,
        backgrounds: Vec<BackgroundSegment>,
        occlusions: Vec<Window>,
        absences: Vec<Window>,
        seed: u64,
    ) -> Self {
        assert!(num_frames > 0, "scenario must contain at least one frame");
        assert!(
            !backgrounds.is_empty(),
            "scenario must define at least one background segment"
        );
        let mut backgrounds = backgrounds;
        backgrounds.sort_by(|a, b| a.start.partial_cmp(&b.start).expect("finite start"));
        let camera_shake = match environment {
            Environment::Indoor => 0.010,
            Environment::Outdoor => 0.030,
        };
        Self {
            name: name.into(),
            environment,
            num_frames,
            frame_width: DEFAULT_FRAME_SIZE,
            frame_height: DEFAULT_FRAME_SIZE,
            trajectory,
            backgrounds,
            occlusions,
            absences,
            camera_shake,
            seed,
        }
    }

    /// Per-frame camera-shake amplitude (fraction of the frame size).
    pub fn camera_shake(&self) -> f64 {
        self.camera_shake
    }

    /// Returns a copy with a different camera-shake amplitude.
    pub fn with_camera_shake(mut self, camera_shake: f64) -> Self {
        self.camera_shake = camera_shake.clamp(0.0, 0.2);
        self
    }

    /// Scenario name (e.g. `"scenario-1"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Indoor / outdoor environment.
    pub fn environment(&self) -> Environment {
        self.environment
    }

    /// Number of frames in the video.
    pub fn num_frames(&self) -> usize {
        self.num_frames
    }

    /// Rendered frame width in pixels.
    pub fn frame_width(&self) -> usize {
        self.frame_width
    }

    /// Rendered frame height in pixels.
    pub fn frame_height(&self) -> usize {
        self.frame_height
    }

    /// Seed driving all per-frame randomness of this scenario.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Returns a copy of the scenario with a different frame resolution.
    pub fn with_frame_size(mut self, width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "frame size must be non-zero");
        self.frame_width = width;
        self.frame_height = height;
        self
    }

    /// Returns a copy with a different number of frames (used by tests and
    /// quick examples to shorten runs).
    pub fn with_num_frames(mut self, num_frames: usize) -> Self {
        assert!(num_frames > 0, "scenario must contain at least one frame");
        self.num_frames = num_frames;
        self
    }

    /// Returns a copy with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The background segments, sorted by start time.
    pub fn backgrounds(&self) -> &[BackgroundSegment] {
        &self.backgrounds
    }

    /// The partial-occlusion windows.
    pub fn occlusions(&self) -> &[Window] {
        &self.occlusions
    }

    /// The out-of-view windows.
    pub fn absences(&self) -> &[Window] {
        &self.absences
    }

    /// Index of the background segment active at normalized time `t`.
    pub fn background_index_at(&self, t: f64) -> usize {
        let mut index = 0;
        for (i, seg) in self.backgrounds.iter().enumerate() {
            if t >= seg.start {
                index = i;
            }
        }
        index
    }

    /// The background segment active at normalized time `t`.
    pub fn background_at(&self, t: f64) -> BackgroundSegment {
        self.backgrounds[self.background_index_at(t)]
    }

    /// Latent frame context at frame `index`.
    pub fn context_at(&self, index: usize) -> FrameContext {
        let t = self.time_of(index);
        let (_, _, distance) = self.trajectory.sample(t);
        let segment = self.background_at(t);
        let occlusion = self
            .occlusions
            .iter()
            .filter(|w| w.contains(t))
            .map(|w| w.amount)
            .fold(0.0f64, f64::max);
        let in_view = !self.absences.iter().any(|w| w.contains(t));
        let motion = (self.trajectory.speed(t) * 1.5).clamp(0.0, 1.0);
        FrameContext::new(
            distance,
            segment.clutter,
            segment.contrast,
            motion,
            occlusion,
            segment.lighting,
            in_view,
        )
    }

    /// Ground-truth bounding box at frame `index`, or `None` when the target
    /// is out of view.
    pub fn truth_at(&self, index: usize) -> Option<BoundingBox> {
        let t = self.time_of(index);
        if self.absences.iter().any(|w| w.contains(t)) {
            return None;
        }
        let (x, y, distance) = self.trajectory.sample(t);
        let fraction = MAX_TARGET_FRACTION + (MIN_TARGET_FRACTION - MAX_TARGET_FRACTION) * distance;
        let w = fraction * self.frame_width as f64;
        let h = fraction * 0.8 * self.frame_height as f64;
        let cx = x * self.frame_width as f64;
        let cy = y * self.frame_height as f64;
        Some(BoundingBox::from_center(cx, cy, w.max(2.0), h.max(2.0)))
    }

    /// Scene appearance (renderer parameters) at frame `index`.
    pub fn appearance_at(&self, index: usize) -> SceneAppearance {
        let t = self.time_of(index);
        let segment = self.background_at(t);
        let shake = |salt: u64| {
            let mut h = self
                .seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add((index as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9))
                .wrapping_add(salt.wrapping_mul(0x94D0_49BB_1331_11EB));
            h ^= h >> 31;
            h = h.wrapping_mul(0x2545_F491_4F6C_DD1D);
            h ^= h >> 29;
            ((h % 2001) as f64 / 1000.0 - 1.0) * self.camera_shake
        };
        SceneAppearance {
            background_id: self.background_index_at(t) as u32 + (self.seed as u32).wrapping_mul(31),
            clutter: segment.clutter,
            contrast: segment.contrast,
            lighting: segment.lighting,
            noise: 0.02,
            camera_dx: shake(1),
            camera_dy: shake(2),
        }
    }

    /// Normalized time of frame `index`.
    pub fn time_of(&self, index: usize) -> f64 {
        if self.num_frames <= 1 {
            0.0
        } else {
            index.min(self.num_frames - 1) as f64 / (self.num_frames - 1) as f64
        }
    }

    /// An iterator over the rendered frames of the scenario.
    pub fn stream(&self) -> FrameStream {
        FrameStream::new(self.clone())
    }

    // ------------------------------------------------------------------
    // The six canonical evaluation scenarios.
    // ------------------------------------------------------------------

    /// Scenario 1 (paper Fig. 3): the drone manoeuvres across intricate
    /// backgrounds far from the camera before returning close. 1,800 frames,
    /// outdoor.
    pub fn scenario_1() -> Self {
        Scenario::new(
            "scenario-1",
            Environment::Outdoor,
            1800,
            Trajectory::approach_retreat(0.92),
            vec![
                BackgroundSegment::new(0.00, 0.25, 0.80, 0.85),
                BackgroundSegment::new(0.03, 0.70, 0.40, 0.75),
                BackgroundSegment::new(0.28, 0.90, 0.30, 0.65),
                BackgroundSegment::new(0.61, 0.55, 0.55, 0.80),
                BackgroundSegment::new(0.92, 0.20, 0.85, 0.90),
            ],
            vec![Window::new(0.45, 0.50, 0.4)],
            vec![],
            101,
        )
    }

    /// Scenario 2 (paper Fig. 4): the drone moves horizontally across simpler
    /// backgrounds at a fixed distance and leaves the frame near the end.
    /// 900 frames, outdoor.
    pub fn scenario_2() -> Self {
        Scenario::new(
            "scenario-2",
            Environment::Outdoor,
            900,
            Trajectory::horizontal_sweep(0.45, 0.55),
            vec![
                BackgroundSegment::new(0.00, 0.15, 0.85, 0.90),
                BackgroundSegment::new(0.30, 0.45, 0.60, 0.85),
                BackgroundSegment::new(0.60, 0.30, 0.75, 0.80),
            ],
            vec![],
            vec![Window::new(0.0, 0.08, 1.0), Window::new(0.52, 0.60, 1.0)],
            202,
        )
    }

    /// Scenario 3: indoor, close-range hover with a low-clutter background —
    /// the easiest video. 500 frames.
    pub fn scenario_3() -> Self {
        Scenario::new(
            "scenario-3",
            Environment::Indoor,
            500,
            Trajectory::hover(0.5, 0.45, 0.18),
            vec![BackgroundSegment::new(0.0, 0.12, 0.90, 0.95)],
            vec![],
            vec![],
            303,
        )
    }

    /// Scenario 4: indoor flight through a cluttered storage area with partial
    /// occlusions. 1,200 frames.
    pub fn scenario_4() -> Self {
        Scenario::new(
            "scenario-4",
            Environment::Indoor,
            1200,
            Trajectory::lawnmower(3, 0.35),
            vec![
                BackgroundSegment::new(0.00, 0.65, 0.55, 0.70),
                BackgroundSegment::new(0.45, 0.85, 0.40, 0.60),
                BackgroundSegment::new(0.80, 0.50, 0.65, 0.75),
            ],
            vec![Window::new(0.20, 0.28, 0.5), Window::new(0.62, 0.68, 0.7)],
            vec![],
            404,
        )
    }

    /// Scenario 5: outdoor long-range surveillance — the drone stays far from
    /// the camera over busy terrain; the hardest video. 2,500 frames.
    pub fn scenario_5() -> Self {
        Scenario::new(
            "scenario-5",
            Environment::Outdoor,
            2500,
            Trajectory::new(vec![
                crate::trajectory::Waypoint::new(0.0, 0.10, 0.40, 0.75),
                crate::trajectory::Waypoint::new(0.35, 0.45, 0.35, 0.95),
                crate::trajectory::Waypoint::new(0.70, 0.75, 0.45, 0.85),
                crate::trajectory::Waypoint::new(1.0, 0.90, 0.40, 0.60),
            ]),
            vec![
                BackgroundSegment::new(0.00, 0.80, 0.35, 0.80),
                BackgroundSegment::new(0.40, 0.95, 0.25, 0.70),
                BackgroundSegment::new(0.75, 0.70, 0.45, 0.85),
            ],
            vec![Window::new(0.55, 0.58, 0.6)],
            vec![Window::new(0.30, 0.34, 1.0)],
            505,
        )
    }

    /// Scenario 6: outdoor dive-and-climb with rapid size changes and a brief
    /// sun-glare (low lighting) segment. 1,500 frames.
    pub fn scenario_6() -> Self {
        Scenario::new(
            "scenario-6",
            Environment::Outdoor,
            1500,
            Trajectory::dive_and_climb(),
            vec![
                BackgroundSegment::new(0.00, 0.40, 0.70, 0.85),
                BackgroundSegment::new(0.33, 0.60, 0.50, 0.35),
                BackgroundSegment::new(0.66, 0.35, 0.75, 0.90),
            ],
            vec![Window::new(0.40, 0.44, 0.5)],
            vec![],
            606,
        )
    }

    /// The full six-scenario evaluation set used by Table III.
    pub fn evaluation_set() -> Vec<Scenario> {
        vec![
            Scenario::scenario_1(),
            Scenario::scenario_2(),
            Scenario::scenario_3(),
            Scenario::scenario_4(),
            Scenario::scenario_5(),
            Scenario::scenario_6(),
        ]
    }

    // ------------------------------------------------------------------
    // Extension scenarios beyond the paper's evaluation set.
    // ------------------------------------------------------------------

    /// Scenario 7 (extension): the drone orbits a point of interest at medium
    /// range over a moderately cluttered yard — the surveillance pattern of a
    /// quadcopter inspecting a structure. 1,000 frames, outdoor.
    pub fn scenario_7_orbit() -> Self {
        Scenario::new(
            "scenario-7-orbit",
            Environment::Outdoor,
            1000,
            Trajectory::orbit(0.5, 0.5, 0.28, 0.45, 2),
            vec![
                BackgroundSegment::new(0.00, 0.45, 0.65, 0.80),
                BackgroundSegment::new(0.50, 0.60, 0.50, 0.70),
            ],
            vec![Window::new(0.70, 0.74, 0.5)],
            vec![],
            707,
        )
    }

    /// Scenario 8 (extension): a figure-eight flight whose near lobe fills
    /// the frame and whose far lobe shrinks the target, stressing rapid
    /// apparent-size changes on every lap. 1,100 frames, outdoor.
    pub fn scenario_8_figure_eight() -> Self {
        Scenario::new(
            "scenario-8-figure-eight",
            Environment::Outdoor,
            1100,
            Trajectory::figure_eight(0.15, 0.80),
            vec![
                BackgroundSegment::new(0.00, 0.35, 0.70, 0.85),
                BackgroundSegment::new(0.45, 0.75, 0.40, 0.65),
                BackgroundSegment::new(0.85, 0.50, 0.60, 0.75),
            ],
            vec![],
            vec![],
            808,
        )
    }

    /// Scenario 9 (extension): a station-holding hover with wind-induced
    /// jitter in a dim indoor hangar — easy geometry but poor lighting and a
    /// long occlusion while a person walks past. 700 frames, indoor.
    pub fn scenario_9_station_hold() -> Self {
        Scenario::new(
            "scenario-9-station-hold",
            Environment::Indoor,
            700,
            Trajectory::hover_jitter(0.55, 0.5, 0.30, 0.04),
            vec![
                BackgroundSegment::new(0.00, 0.30, 0.55, 0.45),
                BackgroundSegment::new(0.60, 0.40, 0.45, 0.40),
            ],
            vec![Window::new(0.35, 0.48, 0.7)],
            vec![],
            909,
        )
    }

    /// The extended evaluation set: the paper's six scenarios plus the three
    /// extension scenarios built on the orbit, figure-eight and jittered
    /// hover trajectories.
    pub fn extended_evaluation_set() -> Vec<Scenario> {
        let mut set = Scenario::evaluation_set();
        set.push(Scenario::scenario_7_orbit());
        set.push(Scenario::scenario_8_figure_eight());
        set.push(Scenario::scenario_9_station_hold());
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evaluation_set_has_six_scenarios_with_paper_lengths() {
        let set = Scenario::evaluation_set();
        assert_eq!(set.len(), 6);
        let indoor = set
            .iter()
            .filter(|s| s.environment() == Environment::Indoor)
            .count();
        assert_eq!(indoor, 2, "paper uses two indoor scenarios");
        for s in &set {
            assert!(
                (500..=2500).contains(&s.num_frames()),
                "{} has {} frames, outside the paper's 500-2500 range",
                s.name(),
                s.num_frames()
            );
        }
    }

    #[test]
    fn scenario_names_are_unique() {
        let set = Scenario::evaluation_set();
        let mut names: Vec<_> = set.iter().map(|s| s.name().to_string()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), set.len());
    }

    #[test]
    fn background_index_is_monotone_in_time() {
        let s = Scenario::scenario_1();
        let mut previous = 0;
        for i in 0..s.num_frames() {
            let idx = s.background_index_at(s.time_of(i));
            assert!(idx >= previous);
            previous = idx;
        }
    }

    #[test]
    fn truth_stays_within_frame_when_in_view() {
        for s in Scenario::evaluation_set() {
            for i in (0..s.num_frames()).step_by(37) {
                if let Some(bbox) = s.truth_at(i) {
                    let clamped = bbox.clamped(s.frame_width(), s.frame_height());
                    assert!(
                        clamped.area() > 0.0,
                        "{} frame {i}: truth box entirely outside frame",
                        s.name()
                    );
                }
            }
        }
    }

    #[test]
    fn absences_remove_truth() {
        let s = Scenario::scenario_2();
        // Frame in the first absence window (first 8% of the video).
        let absent_frame = 10;
        assert!(s.truth_at(absent_frame).is_none());
        assert!(!s.context_at(absent_frame).in_view);
        // Frame in the middle where the target is visible.
        let present_frame = s.num_frames() / 4;
        assert!(s.truth_at(present_frame).is_some());
    }

    #[test]
    fn occlusion_window_raises_difficulty() {
        let s = Scenario::scenario_4();
        // scenario-4 has an occlusion window at t in [0.20, 0.28).
        let inside = (0.24 * (s.num_frames() - 1) as f64) as usize;
        let outside = (0.10 * (s.num_frames() - 1) as f64) as usize;
        assert!(s.context_at(inside).occlusion > s.context_at(outside).occlusion);
    }

    #[test]
    fn distance_changes_target_size() {
        let s = Scenario::scenario_1();
        let near = s.truth_at(0).expect("in view");
        let mid = s.truth_at(s.num_frames() / 2).expect("in view");
        assert!(
            near.area() > mid.area(),
            "a close target must appear larger than a distant one"
        );
    }

    #[test]
    fn with_num_frames_and_seed_are_respected() {
        let s = Scenario::scenario_3().with_num_frames(50).with_seed(7);
        assert_eq!(s.num_frames(), 50);
        assert_eq!(s.seed(), 7);
    }

    #[test]
    fn time_of_spans_unit_interval() {
        let s = Scenario::scenario_3().with_num_frames(11);
        assert_eq!(s.time_of(0), 0.0);
        assert!((s.time_of(10) - 1.0).abs() < 1e-12);
        assert!((s.time_of(5) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn environment_display() {
        assert_eq!(Environment::Indoor.to_string(), "indoor");
        assert_eq!(Environment::Outdoor.to_string(), "outdoor");
    }

    #[test]
    #[should_panic(expected = "at least one frame")]
    fn zero_frames_panics() {
        let _ = Scenario::new(
            "bad",
            Environment::Indoor,
            0,
            Trajectory::default(),
            vec![BackgroundSegment::new(0.0, 0.1, 0.9, 0.9)],
            vec![],
            vec![],
            1,
        );
    }

    #[test]
    fn extended_set_adds_three_new_scenarios() {
        let base = Scenario::evaluation_set();
        let extended = Scenario::extended_evaluation_set();
        assert_eq!(extended.len(), base.len() + 3);
        let names: Vec<_> = extended.iter().map(|s| s.name().to_string()).collect();
        assert!(names.contains(&"scenario-7-orbit".to_string()));
        assert!(names.contains(&"scenario-8-figure-eight".to_string()));
        assert!(names.contains(&"scenario-9-station-hold".to_string()));
        let mut unique_seeds: Vec<_> = extended.iter().map(|s| s.seed()).collect();
        unique_seeds.sort_unstable();
        unique_seeds.dedup();
        assert_eq!(unique_seeds.len(), extended.len(), "seeds must be distinct");
    }

    #[test]
    fn extension_scenarios_produce_valid_streams() {
        for scenario in [
            Scenario::scenario_7_orbit(),
            Scenario::scenario_8_figure_eight(),
            Scenario::scenario_9_station_hold(),
        ] {
            let short = scenario.with_num_frames(40);
            let frames: Vec<_> = short.stream().collect();
            assert_eq!(frames.len(), 40);
            let visible = frames.iter().filter(|f| f.truth.is_some()).count();
            assert!(visible > 30, "{}: target mostly visible", short.name());
            for frame in &frames {
                if let Some(truth) = frame.truth {
                    assert!(truth.area() > 0.0);
                    let (cx, cy) = truth.center();
                    assert!(cx >= 0.0 && cx <= short.frame_width() as f64);
                    assert!(cy >= 0.0 && cy <= short.frame_height() as f64);
                }
            }
        }
    }

    #[test]
    fn figure_eight_scenario_spans_a_wide_difficulty_range() {
        let scenario = Scenario::scenario_8_figure_eight().with_num_frames(200);
        let difficulties: Vec<f64> = (0..200)
            .map(|i| scenario.context_at(i).difficulty())
            .collect();
        let min = difficulties.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = difficulties.iter().cloned().fold(0.0f64, f64::max);
        assert!(
            max - min > 0.2,
            "near/far lobes should differ in difficulty (min {min:.2}, max {max:.2})"
        );
    }
}
