//! Frame streams: the iterator interface every runtime consumes.

use crate::bbox::BoundingBox;
use crate::context::FrameContext;
use crate::image::{render_frame, GrayImage};
use crate::scenario::Scenario;
use serde::{Deserialize, Serialize};

/// A single frame of a scenario: pixels, ground truth and latent context.
///
/// Ground truth (`truth`) and context are consumed only by the evaluation
/// harness and the detection response model; the SHIFT runtime itself sees
/// only `image` and the detections produced by whichever model it ran.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Frame {
    /// Zero-based frame index within its scenario.
    pub index: usize,
    /// Rendered grayscale pixels.
    pub image: GrayImage,
    /// Ground-truth bounding box, or `None` when the target is out of view.
    pub truth: Option<BoundingBox>,
    /// Latent scene context used by the detection response model.
    pub context: FrameContext,
}

impl Frame {
    /// Normalized time of the frame inside a video of `total` frames.
    pub fn normalized_time(&self, total: usize) -> f64 {
        if total <= 1 {
            0.0
        } else {
            self.index.min(total - 1) as f64 / (total - 1) as f64
        }
    }
}

/// Iterator over the frames of a [`Scenario`].
///
/// The iterator is deterministic: two streams created from equal scenarios
/// yield identical frames.
///
/// ```
/// use shift_video::Scenario;
///
/// let scenario = Scenario::scenario_3().with_num_frames(5);
/// let a: Vec<_> = scenario.stream().collect();
/// let b: Vec<_> = scenario.stream().collect();
/// assert_eq!(a.len(), 5);
/// assert_eq!(a, b);
/// ```
#[derive(Debug, Clone)]
pub struct FrameStream {
    scenario: Scenario,
    next_index: usize,
}

impl FrameStream {
    /// Creates a stream over all frames of `scenario`.
    pub fn new(scenario: Scenario) -> Self {
        Self {
            scenario,
            next_index: 0,
        }
    }

    /// The scenario backing this stream.
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// Renders the frame at `index` without advancing the iterator.
    pub fn frame_at(&self, index: usize) -> Option<Frame> {
        if index >= self.scenario.num_frames() {
            return None;
        }
        let context = self.scenario.context_at(index);
        let truth = self.scenario.truth_at(index);
        let appearance = self.scenario.appearance_at(index);
        let seed = self
            .scenario
            .seed()
            .wrapping_mul(0x1000_0000_01B3)
            .wrapping_add(index as u64);
        let image = render_frame(
            self.scenario.frame_width(),
            self.scenario.frame_height(),
            &appearance,
            truth.as_ref(),
            seed,
        );
        Some(Frame {
            index,
            image,
            truth,
            context,
        })
    }
}

impl Iterator for FrameStream {
    type Item = Frame;

    fn next(&mut self) -> Option<Frame> {
        let frame = self.frame_at(self.next_index)?;
        self.next_index += 1;
        Some(frame)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = self.scenario.num_frames().saturating_sub(self.next_index);
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for FrameStream {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_yields_every_frame_exactly_once() {
        let scenario = Scenario::scenario_3().with_num_frames(20);
        let frames: Vec<_> = scenario.stream().collect();
        assert_eq!(frames.len(), 20);
        for (i, frame) in frames.iter().enumerate() {
            assert_eq!(frame.index, i);
        }
    }

    #[test]
    fn stream_is_deterministic() {
        let scenario = Scenario::scenario_1().with_num_frames(12);
        let a: Vec<_> = scenario.stream().collect();
        let b: Vec<_> = scenario.stream().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_give_different_pixels() {
        let a: Vec<_> = Scenario::scenario_3()
            .with_num_frames(3)
            .with_seed(1)
            .stream()
            .collect();
        let b: Vec<_> = Scenario::scenario_3()
            .with_num_frames(3)
            .with_seed(2)
            .stream()
            .collect();
        assert_ne!(a[0].image, b[0].image);
    }

    #[test]
    fn size_hint_and_exact_size() {
        let scenario = Scenario::scenario_3().with_num_frames(7);
        let mut stream = scenario.stream();
        assert_eq!(stream.len(), 7);
        stream.next();
        assert_eq!(stream.len(), 6);
        assert_eq!(stream.size_hint(), (6, Some(6)));
    }

    #[test]
    fn frame_at_out_of_range_is_none() {
        let scenario = Scenario::scenario_3().with_num_frames(5);
        let stream = scenario.stream();
        assert!(stream.frame_at(5).is_none());
        assert!(stream.frame_at(4).is_some());
    }

    #[test]
    fn truth_matches_scenario_truth() {
        let scenario = Scenario::scenario_2().with_num_frames(40);
        for frame in scenario.stream() {
            assert_eq!(frame.truth, scenario.truth_at(frame.index));
            assert_eq!(frame.context, scenario.context_at(frame.index));
        }
    }

    #[test]
    fn normalized_time_endpoints() {
        let scenario = Scenario::scenario_3().with_num_frames(10);
        let frames: Vec<_> = scenario.stream().collect();
        assert_eq!(frames[0].normalized_time(10), 0.0);
        assert!((frames[9].normalized_time(10) - 1.0).abs() < 1e-12);
    }
}
