//! Axis-aligned bounding boxes and intersection-over-union (IoU).
//!
//! The paper scores every object-detection model by the IoU between its
//! predicted box and the labeled ground truth, and uses `IoU >= 0.5` as the
//! *success* criterion. All geometry here is in continuous pixel coordinates
//! so that sub-pixel target motion produces smoothly varying IoU values.

use serde::{Deserialize, Serialize};

/// An axis-aligned bounding box in pixel coordinates.
///
/// `x`/`y` are the top-left corner; `w`/`h` are the width and height. Boxes
/// with non-positive width or height are treated as empty.
///
/// ```
/// use shift_video::BoundingBox;
///
/// let a = BoundingBox::new(0.0, 0.0, 10.0, 10.0);
/// let b = BoundingBox::new(5.0, 0.0, 10.0, 10.0);
/// let iou = a.iou(&b);
/// assert!((iou - 1.0 / 3.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoundingBox {
    /// Left edge in pixels.
    pub x: f64,
    /// Top edge in pixels.
    pub y: f64,
    /// Width in pixels.
    pub w: f64,
    /// Height in pixels.
    pub h: f64,
}

impl BoundingBox {
    /// Creates a new box from its top-left corner and size.
    pub fn new(x: f64, y: f64, w: f64, h: f64) -> Self {
        Self { x, y, w, h }
    }

    /// Creates a box centred at `(cx, cy)` with the given width and height.
    pub fn from_center(cx: f64, cy: f64, w: f64, h: f64) -> Self {
        Self {
            x: cx - w / 2.0,
            y: cy - h / 2.0,
            w,
            h,
        }
    }

    /// Centre of the box `(cx, cy)`.
    pub fn center(&self) -> (f64, f64) {
        (self.x + self.w / 2.0, self.y + self.h / 2.0)
    }

    /// Area of the box; zero for empty boxes.
    pub fn area(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.w * self.h
        }
    }

    /// `true` when the box has non-positive width or height.
    pub fn is_empty(&self) -> bool {
        self.w <= 0.0 || self.h <= 0.0
    }

    /// Right edge (`x + w`).
    pub fn right(&self) -> f64 {
        self.x + self.w
    }

    /// Bottom edge (`y + h`).
    pub fn bottom(&self) -> f64 {
        self.y + self.h
    }

    /// Intersection of two boxes, if it is non-empty.
    pub fn intersection(&self, other: &BoundingBox) -> Option<BoundingBox> {
        let x0 = self.x.max(other.x);
        let y0 = self.y.max(other.y);
        let x1 = self.right().min(other.right());
        let y1 = self.bottom().min(other.bottom());
        if x1 > x0 && y1 > y0 {
            Some(BoundingBox::new(x0, y0, x1 - x0, y1 - y0))
        } else {
            None
        }
    }

    /// Area of the intersection of two boxes.
    pub fn intersection_area(&self, other: &BoundingBox) -> f64 {
        self.intersection(other).map_or(0.0, |b| b.area())
    }

    /// Area of the union of two boxes.
    pub fn union_area(&self, other: &BoundingBox) -> f64 {
        self.area() + other.area() - self.intersection_area(other)
    }

    /// Intersection over union. Returns `0.0` when the union is empty.
    ///
    /// The result is always within `[0, 1]` and is symmetric in its
    /// arguments.
    pub fn iou(&self, other: &BoundingBox) -> f64 {
        let union = self.union_area(other);
        if union <= 0.0 {
            0.0
        } else {
            (self.intersection_area(other) / union).clamp(0.0, 1.0)
        }
    }

    /// Whether the point `(px, py)` lies inside the box (inclusive of the
    /// top-left edge, exclusive of the bottom-right edge).
    pub fn contains_point(&self, px: f64, py: f64) -> bool {
        px >= self.x && px < self.right() && py >= self.y && py < self.bottom()
    }

    /// Translates the box by `(dx, dy)`.
    pub fn translated(&self, dx: f64, dy: f64) -> BoundingBox {
        BoundingBox::new(self.x + dx, self.y + dy, self.w, self.h)
    }

    /// Scales the box around its centre by `factor`.
    pub fn scaled(&self, factor: f64) -> BoundingBox {
        let (cx, cy) = self.center();
        BoundingBox::from_center(cx, cy, self.w * factor, self.h * factor)
    }

    /// Clamps the box to the image rectangle `[0, width) x [0, height)`.
    ///
    /// Returns an empty box (zero width/height) when the box lies entirely
    /// outside the image.
    pub fn clamped(&self, width: usize, height: usize) -> BoundingBox {
        let x0 = self.x.clamp(0.0, width as f64);
        let y0 = self.y.clamp(0.0, height as f64);
        let x1 = self.right().clamp(0.0, width as f64);
        let y1 = self.bottom().clamp(0.0, height as f64);
        BoundingBox::new(x0, y0, (x1 - x0).max(0.0), (y1 - y0).max(0.0))
    }

    /// Euclidean distance between the centres of two boxes.
    pub fn center_distance(&self, other: &BoundingBox) -> f64 {
        let (ax, ay) = self.center();
        let (bx, by) = other.center();
        ((ax - bx).powi(2) + (ay - by).powi(2)).sqrt()
    }

    /// Constructs a box translated from `self` such that the IoU between the
    /// result and `self` equals `target_iou` (for pure horizontal/vertical
    /// translation of an identically sized box).
    ///
    /// This is the inverse of the IoU formula for translated equal boxes and
    /// is used by the detection response model to emit predictions with a
    /// prescribed overlap against ground truth. `direction` is an angle in
    /// radians selecting the translation direction.
    ///
    /// # Panics
    ///
    /// Does not panic; `target_iou` is clamped to `[0, 1]`.
    pub fn with_target_iou(&self, target_iou: f64, direction: f64) -> BoundingBox {
        let iou = target_iou.clamp(0.0, 1.0);
        if iou >= 1.0 {
            return *self;
        }
        // For two equal boxes of size (w, h) translated by (k*c*w, k*s*h)
        // with c = |cos(direction)|, s = |sin(direction)| and overlap fractions
        // below one on both axes, the IoU is P / (2 - P) where
        // P = (1 - k*c) * (1 - k*s).  Invert for k given the target IoU.
        let c = direction.cos().abs();
        let s = direction.sin().abs();
        let p = (2.0 * iou / (1.0 + iou)).clamp(0.0, 1.0);
        let cs = c * s;
        let k = if cs < 1e-9 {
            // Shift along a single axis: (1 - k*(c+s)) = P.
            (1.0 - p) / (c + s).max(1e-9)
        } else {
            // Quadratic k^2*cs - k*(c+s) + (1 - P) = 0; take the smaller root
            // so both overlap fractions stay in [0, 1].
            let b = c + s;
            let disc = (b * b - 4.0 * cs * (1.0 - p)).max(0.0);
            (b - disc.sqrt()) / (2.0 * cs)
        };
        let dx = k * c * self.w * direction.cos().signum_or_one();
        let dy = k * s * self.h * direction.sin().signum_or_one();
        self.translated(dx, dy)
    }
}

impl Default for BoundingBox {
    fn default() -> Self {
        BoundingBox::new(0.0, 0.0, 0.0, 0.0)
    }
}

/// Extension trait giving `f64::signum` a well-defined value at zero.
trait SignumOrOne {
    fn signum_or_one(self) -> f64;
}

impl SignumOrOne for f64 {
    fn signum_or_one(self) -> f64 {
        if self == 0.0 {
            1.0
        } else {
            self.signum()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_boxes_have_iou_one() {
        let b = BoundingBox::new(3.0, 4.0, 10.0, 8.0);
        assert!((b.iou(&b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn disjoint_boxes_have_iou_zero() {
        let a = BoundingBox::new(0.0, 0.0, 5.0, 5.0);
        let b = BoundingBox::new(100.0, 100.0, 5.0, 5.0);
        assert_eq!(a.iou(&b), 0.0);
        assert!(a.intersection(&b).is_none());
    }

    #[test]
    fn half_overlap_iou() {
        let a = BoundingBox::new(0.0, 0.0, 10.0, 10.0);
        let b = BoundingBox::new(5.0, 0.0, 10.0, 10.0);
        // intersection 50, union 150.
        assert!((a.iou(&b) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn iou_is_symmetric() {
        let a = BoundingBox::new(1.0, 2.0, 7.0, 3.0);
        let b = BoundingBox::new(4.0, 1.0, 6.0, 9.0);
        assert!((a.iou(&b) - b.iou(&a)).abs() < 1e-12);
    }

    #[test]
    fn empty_box_has_zero_area_and_iou() {
        let e = BoundingBox::new(0.0, 0.0, 0.0, 10.0);
        let b = BoundingBox::new(0.0, 0.0, 10.0, 10.0);
        assert!(e.is_empty());
        assert_eq!(e.area(), 0.0);
        assert_eq!(e.iou(&b), 0.0);
    }

    #[test]
    fn from_center_round_trips() {
        let b = BoundingBox::from_center(50.0, 40.0, 20.0, 10.0);
        let (cx, cy) = b.center();
        assert!((cx - 50.0).abs() < 1e-12);
        assert!((cy - 40.0).abs() < 1e-12);
        assert_eq!(b.x, 40.0);
        assert_eq!(b.y, 35.0);
    }

    #[test]
    fn clamped_respects_image_bounds() {
        let b = BoundingBox::new(-5.0, -5.0, 20.0, 20.0).clamped(10, 10);
        assert_eq!(b.x, 0.0);
        assert_eq!(b.y, 0.0);
        assert_eq!(b.w, 10.0);
        assert_eq!(b.h, 10.0);

        let outside = BoundingBox::new(100.0, 100.0, 5.0, 5.0).clamped(10, 10);
        assert!(outside.is_empty());
    }

    #[test]
    fn contains_point_edges() {
        let b = BoundingBox::new(0.0, 0.0, 10.0, 10.0);
        assert!(b.contains_point(0.0, 0.0));
        assert!(b.contains_point(9.99, 9.99));
        assert!(!b.contains_point(10.0, 5.0));
        assert!(!b.contains_point(-0.1, 5.0));
    }

    #[test]
    fn translated_and_scaled() {
        let b = BoundingBox::new(0.0, 0.0, 10.0, 10.0);
        let t = b.translated(5.0, -3.0);
        assert_eq!(t.x, 5.0);
        assert_eq!(t.y, -3.0);
        let s = b.scaled(2.0);
        assert_eq!(s.w, 20.0);
        assert_eq!(s.center(), b.center());
    }

    #[test]
    fn with_target_iou_hits_requested_overlap() {
        let truth = BoundingBox::new(20.0, 20.0, 16.0, 12.0);
        for &target in &[0.9, 0.75, 0.5, 0.3, 0.1] {
            for &dir in &[0.0f64, 0.7, 1.57, 2.3, 3.9] {
                let pred = truth.with_target_iou(target, dir);
                let got = truth.iou(&pred);
                assert!(
                    (got - target).abs() < 1e-6,
                    "target {target} dir {dir} got {got}"
                );
            }
        }
    }

    #[test]
    fn with_target_iou_one_is_identity() {
        let truth = BoundingBox::new(1.0, 2.0, 3.0, 4.0);
        assert_eq!(truth.with_target_iou(1.0, 0.3), truth);
    }

    #[test]
    fn center_distance_matches_euclid() {
        let a = BoundingBox::from_center(0.0, 0.0, 2.0, 2.0);
        let b = BoundingBox::from_center(3.0, 4.0, 2.0, 2.0);
        assert!((a.center_distance(&b) - 5.0).abs() < 1e-12);
    }
}
