//! Frame context: the latent scene properties that determine how hard a
//! frame is for each object-detection model.
//!
//! The paper's central observation is that detection accuracy depends on the
//! *context* embedded in the input stream — target distance, background
//! complexity, contrast, motion and occlusion. The synthetic scenarios expose
//! this context explicitly; the detection response model in `shift-models`
//! maps it (plus each model's capacity) to an IoU and a confidence score.
//! SHIFT itself never reads the context directly — it only observes pixels,
//! confidence scores and NCC values — so exposing it here does not leak
//! ground truth into the scheduler.

use serde::{Deserialize, Serialize};

/// The latent per-frame scene description.
///
/// All fields are normalized to `[0, 1]`. Larger `distance`, `clutter`,
/// `motion` and `occlusion` make detection harder; larger `contrast` and
/// `lighting` make it easier.
///
/// ```
/// use shift_video::FrameContext;
///
/// let easy = FrameContext::easy();
/// let hard = FrameContext::hard();
/// assert!(easy.difficulty() < hard.difficulty());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FrameContext {
    /// Normalized target distance from the camera (0 = close, 1 = far).
    pub distance: f64,
    /// Background clutter / texture complexity.
    pub clutter: f64,
    /// Target-to-background contrast (1 = strongly contrasted, easy).
    pub contrast: f64,
    /// Apparent inter-frame motion of the target.
    pub motion: f64,
    /// Fraction of the target occluded.
    pub occlusion: f64,
    /// Illumination quality (1 = well lit, easy).
    pub lighting: f64,
    /// Whether the target is inside the camera's field of view at all.
    pub in_view: bool,
}

impl FrameContext {
    /// Weight of each factor in the difficulty score. Distance and clutter
    /// dominate, matching the paper's scenarios where accuracy collapses when
    /// the drone is far away or crossing a busy background.
    const W_DISTANCE: f64 = 0.34;
    const W_CLUTTER: f64 = 0.26;
    const W_CONTRAST: f64 = 0.16;
    const W_OCCLUSION: f64 = 0.14;
    const W_MOTION: f64 = 0.05;
    const W_LIGHTING: f64 = 0.05;

    /// Creates a context with every field clamped to `[0, 1]`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        distance: f64,
        clutter: f64,
        contrast: f64,
        motion: f64,
        occlusion: f64,
        lighting: f64,
        in_view: bool,
    ) -> Self {
        Self {
            distance: distance.clamp(0.0, 1.0),
            clutter: clutter.clamp(0.0, 1.0),
            contrast: contrast.clamp(0.0, 1.0),
            motion: motion.clamp(0.0, 1.0),
            occlusion: occlusion.clamp(0.0, 1.0),
            lighting: lighting.clamp(0.0, 1.0),
            in_view,
        }
    }

    /// A canonical easy context: close, contrasted target on a plain
    /// background.
    pub fn easy() -> Self {
        Self::new(0.1, 0.1, 0.9, 0.1, 0.0, 0.9, true)
    }

    /// A canonical hard context: distant, low-contrast target on a cluttered
    /// background.
    pub fn hard() -> Self {
        Self::new(0.9, 0.9, 0.2, 0.5, 0.3, 0.4, true)
    }

    /// A context interpolated linearly between [`easy`](Self::easy) and
    /// [`hard`](Self::hard); `t = 0` is easy, `t = 1` is hard.
    pub fn graded(t: f64) -> Self {
        let t = t.clamp(0.0, 1.0);
        let e = Self::easy();
        let h = Self::hard();
        Self::new(
            e.distance + t * (h.distance - e.distance),
            e.clutter + t * (h.clutter - e.clutter),
            e.contrast + t * (h.contrast - e.contrast),
            e.motion + t * (h.motion - e.motion),
            e.occlusion + t * (h.occlusion - e.occlusion),
            e.lighting + t * (h.lighting - e.lighting),
            true,
        )
    }

    /// Aggregate detection difficulty in `[0, 1]`.
    ///
    /// Frames where the target is out of view have difficulty `1.0`: no
    /// model can produce a true positive.
    pub fn difficulty(&self) -> f64 {
        if !self.in_view {
            return 1.0;
        }
        let score = Self::W_DISTANCE * self.distance
            + Self::W_CLUTTER * self.clutter
            + Self::W_CONTRAST * (1.0 - self.contrast)
            + Self::W_OCCLUSION * self.occlusion
            + Self::W_MOTION * self.motion
            + Self::W_LIGHTING * (1.0 - self.lighting);
        score.clamp(0.0, 1.0)
    }

    /// Returns a copy with the occlusion replaced.
    pub fn with_occlusion(mut self, occlusion: f64) -> Self {
        self.occlusion = occlusion.clamp(0.0, 1.0);
        self
    }

    /// Returns a copy with the visibility flag replaced.
    pub fn with_in_view(mut self, in_view: bool) -> Self {
        self.in_view = in_view;
        self
    }
}

impl Default for FrameContext {
    fn default() -> Self {
        Self::easy()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn difficulty_bounds() {
        for t in 0..=20 {
            let ctx = FrameContext::graded(t as f64 / 20.0);
            let d = ctx.difficulty();
            assert!((0.0..=1.0).contains(&d), "difficulty {d} out of bounds");
        }
    }

    #[test]
    fn difficulty_monotone_in_grading() {
        let mut previous = -1.0;
        for t in 0..=10 {
            let d = FrameContext::graded(t as f64 / 10.0).difficulty();
            assert!(d >= previous, "difficulty must grow with grading");
            previous = d;
        }
    }

    #[test]
    fn out_of_view_is_maximally_hard() {
        let ctx = FrameContext::easy().with_in_view(false);
        assert_eq!(ctx.difficulty(), 1.0);
    }

    #[test]
    fn constructor_clamps_inputs() {
        let ctx = FrameContext::new(2.0, -1.0, 5.0, -0.5, 3.0, -2.0, true);
        assert_eq!(ctx.distance, 1.0);
        assert_eq!(ctx.clutter, 0.0);
        assert_eq!(ctx.contrast, 1.0);
        assert_eq!(ctx.motion, 0.0);
        assert_eq!(ctx.occlusion, 1.0);
        assert_eq!(ctx.lighting, 0.0);
    }

    #[test]
    fn distance_matters_more_than_motion() {
        let near = FrameContext::new(0.0, 0.5, 0.5, 1.0, 0.0, 0.5, true);
        let far = FrameContext::new(1.0, 0.5, 0.5, 0.0, 0.0, 0.5, true);
        assert!(far.difficulty() > near.difficulty());
    }

    #[test]
    fn occlusion_increases_difficulty() {
        let base = FrameContext::graded(0.4);
        let occluded = base.with_occlusion(0.9);
        assert!(occluded.difficulty() > base.difficulty());
    }

    #[test]
    fn default_is_easy() {
        assert_eq!(FrameContext::default(), FrameContext::easy());
    }
}
