//! Normalized cross-correlation (Eq. 1 of the paper).
//!
//! The SHIFT scheduler assesses frame similarity with the normalized
//! cross-correlation between consecutive grayscale frames and between the
//! crops under consecutive bounding-box detections:
//!
//! ```text
//! NCC(p, c) = sum((p - mean(p)) * (c - mean(c)))
//!             / (sqrt(sum((c - mean(c))^2)) * sqrt(sum((p - mean(p))^2)))
//! ```
//!
//! A value near `1` means the scene barely changed; a sharp drop signals a
//! context change that should trigger re-scheduling.
//!
//! # Error handling on the hot path
//!
//! [`ncc`] can only fail with [`VideoError::DimensionMismatch`], and a
//! stream's dimensions never legitimately change mid-video — a mismatch is
//! always a wiring bug in the caller. The per-frame helpers here and the
//! `ContextDetector` in `shift-core` therefore assert matching dimensions in
//! debug builds and, in release builds, fall back to similarity `0.0`
//! ("everything changed"). The fallback keeps a miswired release binary
//! running, but note its cost: a permanent scene cut forces a full
//! re-scheduling pass on every frame and thrashes the shared loader, which
//! is why the debug assertion exists to catch the bug early.

use crate::bbox::BoundingBox;
use crate::image::GrayImage;
use crate::VideoError;

/// Size (width and height) that bounding-box crops are resampled to before
/// computing their NCC, so that boxes of different sizes remain comparable.
pub const REGION_NCC_SIZE: usize = 16;

/// Computes the normalized cross-correlation between two images of identical
/// dimensions.
///
/// Returns a value in `[-1, 1]`. When either image has (numerically) zero
/// variance the correlation is defined as `1.0` if both are flat and `0.0`
/// otherwise, which matches the intuitive reading of "nothing changed" /
/// "everything changed" used by the scheduler.
///
/// The per-image terms — the means and the self-correlation denominators
/// `Σ (v − mean)²` — come from each [`GrayImage`]'s lazily cached moments,
/// so only the cross term `Σ (p − mean(p)) (c − mean(c))` runs as a pairwise
/// pass here. Historically all three accumulators ran in one three-pass
/// formulation; because every surviving accumulator still sees the same
/// operand sequence left-to-right, the result is bit-identical (the cross
/// term is deliberately *not* rewritten as `dot(p, c) − n·mean(p)·mean(c)`,
/// which rounds differently).
///
/// # Errors
///
/// Returns [`VideoError::DimensionMismatch`] when the images have different
/// sizes.
///
/// ```
/// use shift_video::{GrayImage, ncc};
///
/// let a = GrayImage::from_fn(8, 8, |x, y| (x + y) as f32 / 16.0);
/// let same = ncc(&a, &a)?;
/// assert!((same - 1.0).abs() < 1e-6);
/// # Ok::<(), shift_video::VideoError>(())
/// ```
pub fn ncc(p: &GrayImage, c: &GrayImage) -> Result<f64, VideoError> {
    if p.width() != c.width() || p.height() != c.height() {
        return Err(VideoError::DimensionMismatch {
            lhs: (p.width(), p.height()),
            rhs: (c.width(), c.height()),
        });
    }
    let mp = p.mean();
    let mc = c.mean();
    let dp = p.centered_norm();
    let dc = c.centered_norm();
    let mut num = 0.0f64;
    for (a, b) in p.pixels().iter().zip(c.pixels().iter()) {
        let da = *a as f64 - mp;
        let db = *b as f64 - mc;
        num += da * db;
    }
    const EPS: f64 = 1e-12;
    if dp < EPS && dc < EPS {
        return Ok(1.0);
    }
    if dp < EPS || dc < EPS {
        return Ok(0.0);
    }
    Ok((num / (dp.sqrt() * dc.sqrt())).clamp(-1.0, 1.0))
}

/// One side of [`RegionNcc`]'s scratch state: a reusable
/// [`REGION_NCC_SIZE`]² target buffer plus the nearest-neighbour index map
/// of the last crop shape sampled into it. Bounding boxes are near-constant
/// within a stream, so the map — the `floor((i + 0.5) / REGION_NCC_SIZE ·
/// crop_extent)` source index per target row/column, exactly the arithmetic
/// of [`GrayImage::resized`] — is recomputed only when the crop shape
/// actually changes.
#[derive(Debug, Clone)]
struct RegionSlot {
    target: GrayImage,
    source_x: [usize; REGION_NCC_SIZE],
    source_y: [usize; REGION_NCC_SIZE],
    crop_shape: (usize, usize),
}

impl RegionSlot {
    fn new() -> Self {
        Self {
            target: GrayImage::new(REGION_NCC_SIZE, REGION_NCC_SIZE),
            source_x: [0; REGION_NCC_SIZE],
            source_y: [0; REGION_NCC_SIZE],
            crop_shape: (0, 0),
        }
    }

    /// Samples `frame`'s crop under `bbox` into the scratch target — the
    /// fusion of `frame.crop(bbox)` + `crop.resized(16, 16)` without the two
    /// intermediate allocations; the sampled source pixels are identical.
    /// Returns `false` when the clamped crop is empty (the out-of-frame
    /// case, which the caller maps to similarity `0.0`).
    fn fill(&mut self, frame: &GrayImage, bbox: &BoundingBox) -> bool {
        let clamped = bbox.clamped(frame.width(), frame.height());
        let x0 = clamped.x.floor() as usize;
        let y0 = clamped.y.floor() as usize;
        let x1 = (clamped.right().ceil() as usize).min(frame.width());
        let y1 = (clamped.bottom().ceil() as usize).min(frame.height());
        if x1 <= x0 || y1 <= y0 {
            return false;
        }
        let (crop_w, crop_h) = (x1 - x0, y1 - y0);
        if self.crop_shape != (crop_w, crop_h) {
            // Same arithmetic as `GrayImage::resized`, evaluated once per
            // axis instead of once per pixel.
            for (x, sx) in self.source_x.iter_mut().enumerate() {
                let s =
                    ((x as f64 + 0.5) / REGION_NCC_SIZE as f64 * crop_w as f64).floor() as usize;
                *sx = s.min(crop_w - 1);
            }
            for (y, sy) in self.source_y.iter_mut().enumerate() {
                let s =
                    ((y as f64 + 0.5) / REGION_NCC_SIZE as f64 * crop_h as f64).floor() as usize;
                *sy = s.min(crop_h - 1);
            }
            self.crop_shape = (crop_w, crop_h);
        }
        let source = frame.pixels();
        let stride = frame.width();
        let target = self.target.pixels_mut();
        for (y, &sy) in self.source_y.iter().enumerate() {
            let row = &source[(y0 + sy) * stride..];
            for (x, &sx) in self.source_x.iter().enumerate() {
                target[y * REGION_NCC_SIZE + x] = row[x0 + sx];
            }
        }
        true
    }
}

/// Reusable scratch state for the bounding-box NCC term: two
/// [`REGION_NCC_SIZE`]² buffers the crops are sampled straight into, making
/// the steady-state region path allocation-free (the historical path
/// allocated two crops plus two resized images per call).
///
/// Results are bit-identical to [`ncc_regions`]; holders that score many
/// frames (the context detector, the tracker baselines) keep one of these
/// alive instead of calling the allocating free function.
#[derive(Debug, Clone)]
pub struct RegionNcc {
    prev: RegionSlot,
    cur: RegionSlot,
}

impl Default for RegionNcc {
    fn default() -> Self {
        Self::new()
    }
}

impl RegionNcc {
    /// Creates the scratch buffers (the only allocation this type performs).
    pub fn new() -> Self {
        Self {
            prev: RegionSlot::new(),
            cur: RegionSlot::new(),
        }
    }

    /// Computes the NCC between the regions of two frames selected by two
    /// bounding boxes, reusing the scratch buffers. See [`ncc_regions`] for
    /// the semantics; the two are bit-identical.
    pub fn ncc_regions(
        &mut self,
        prev_frame: &GrayImage,
        prev_bbox: &BoundingBox,
        cur_frame: &GrayImage,
        cur_bbox: &BoundingBox,
    ) -> f64 {
        if !self.prev.fill(prev_frame, prev_bbox) || !self.cur.fill(cur_frame, cur_bbox) {
            return 0.0;
        }
        // The scratch targets always share the 16×16 shape, so the dimension
        // check inside `ncc` cannot fail; `unwrap_or` documents the release
        // fallback regardless (see the module-level error-handling note).
        ncc(&self.prev.target, &self.cur.target).unwrap_or(0.0)
    }
}

/// Computes the NCC between the regions of two frames selected by two
/// bounding boxes (the "bounding-box NCC" term of the scheduler's similarity
/// score).
///
/// Both crops are resampled to [`REGION_NCC_SIZE`]² before correlation so
/// that boxes of different sizes remain comparable. If either box does not
/// overlap its frame the function returns `0.0`, signalling maximal change —
/// this is what drives re-scheduling when a detection disappears.
///
/// This convenience form allocates a fresh [`RegionNcc`] scratch per call;
/// per-frame callers hold a [`RegionNcc`] instead.
pub fn ncc_regions(
    prev_frame: &GrayImage,
    prev_bbox: &BoundingBox,
    cur_frame: &GrayImage,
    cur_bbox: &BoundingBox,
) -> f64 {
    RegionNcc::new().ncc_regions(prev_frame, prev_bbox, cur_frame, cur_bbox)
}

/// Convenience helper computing the scheduler's combined similarity score:
/// `min(NCC(last image, image), NCC(last bbox crop, bbox crop))`.
///
/// The full-frame term treats a dimension mismatch as maximal change
/// (`0.0`): stream dimensions never legitimately change mid-video, so the
/// fallback only matters for miswired callers, and the debug-mode assertion
/// at the `ContextDetector` boundary is what actually surfaces those.
pub fn frame_similarity(
    prev_frame: &GrayImage,
    prev_bbox: &BoundingBox,
    cur_frame: &GrayImage,
    cur_bbox: &BoundingBox,
) -> f64 {
    let image_ncc = ncc(prev_frame, cur_frame).unwrap_or(0.0);
    let bbox_ncc = ncc_regions(prev_frame, prev_bbox, cur_frame, cur_bbox);
    image_ncc.min(bbox_ncc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::{render_frame, SceneAppearance};

    fn gradient(w: usize, h: usize) -> GrayImage {
        GrayImage::from_fn(w, h, |x, y| (x as f32 + y as f32) / (w + h) as f32)
    }

    #[test]
    fn self_ncc_is_one() {
        let img = gradient(16, 16);
        assert!((ncc(&img, &img).unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn inverted_image_has_ncc_minus_one() {
        let img = gradient(16, 16);
        let inv = GrayImage::from_fn(16, 16, |x, y| 1.0 - img.get(x, y));
        assert!((ncc(&img, &inv).unwrap() + 1.0).abs() < 1e-6);
    }

    #[test]
    fn flat_images_are_perfectly_similar() {
        let a = GrayImage::from_fn(8, 8, |_, _| 0.3);
        let b = GrayImage::from_fn(8, 8, |_, _| 0.9);
        // Both have zero variance: defined as identical structure.
        assert_eq!(ncc(&a, &b).unwrap(), 1.0);
    }

    #[test]
    fn flat_vs_textured_is_zero() {
        let flat = GrayImage::from_fn(8, 8, |_, _| 0.5);
        let tex = gradient(8, 8);
        assert_eq!(ncc(&flat, &tex).unwrap(), 0.0);
    }

    #[test]
    fn dimension_mismatch_is_error() {
        let a = GrayImage::new(4, 4);
        let b = GrayImage::new(8, 8);
        assert!(matches!(
            ncc(&a, &b),
            Err(VideoError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn ncc_in_unit_range_for_rendered_frames() {
        let app_a = SceneAppearance::default();
        let app_b = SceneAppearance {
            background_id: 3,
            clutter: 0.9,
            ..SceneAppearance::default()
        };
        let a = render_frame(48, 48, &app_a, None, 1);
        let b = render_frame(48, 48, &app_b, None, 2);
        let v = ncc(&a, &b).unwrap();
        assert!((-1.0..=1.0).contains(&v));
    }

    #[test]
    fn background_change_lowers_ncc() {
        let same = SceneAppearance::default();
        let different = SceneAppearance {
            background_id: 9,
            lighting: 0.3,
            clutter: 0.9,
            ..SceneAppearance::default()
        };
        let a = render_frame(48, 48, &same, None, 10);
        let b = render_frame(48, 48, &same, None, 11);
        let c = render_frame(48, 48, &different, None, 12);
        let similar = ncc(&a, &b).unwrap();
        let dissimilar = ncc(&a, &c).unwrap();
        assert!(
            similar > dissimilar,
            "same background should correlate more: {similar} vs {dissimilar}"
        );
        assert!(similar > 0.8);
    }

    #[test]
    fn region_ncc_of_identical_crops_is_high() {
        let app = SceneAppearance::default();
        let bbox = BoundingBox::from_center(24.0, 24.0, 12.0, 12.0);
        let frame = render_frame(48, 48, &app, Some(&bbox), 5);
        let v = ncc_regions(&frame, &bbox, &frame, &bbox);
        assert!(v > 0.99, "identical crops should correlate, got {v}");
    }

    #[test]
    fn region_ncc_with_out_of_frame_box_is_zero() {
        let frame = render_frame(32, 32, &SceneAppearance::default(), None, 5);
        let inside = BoundingBox::from_center(16.0, 16.0, 8.0, 8.0);
        let outside = BoundingBox::new(500.0, 500.0, 8.0, 8.0);
        assert_eq!(ncc_regions(&frame, &inside, &frame, &outside), 0.0);
    }

    #[test]
    fn frame_similarity_is_min_of_terms() {
        let app = SceneAppearance::default();
        let bbox = BoundingBox::from_center(20.0, 20.0, 10.0, 10.0);
        let a = render_frame(40, 40, &app, Some(&bbox), 1);
        let moved = bbox.translated(10.0, 0.0);
        let b = render_frame(40, 40, &app, Some(&moved), 2);
        let sim = frame_similarity(&a, &bbox, &b, &moved);
        let img = ncc(&a, &b).unwrap();
        let reg = ncc_regions(&a, &bbox, &b, &moved);
        assert!((sim - img.min(reg)).abs() < 1e-12);
    }
}
