//! Normalized cross-correlation (Eq. 1 of the paper).
//!
//! The SHIFT scheduler assesses frame similarity with the normalized
//! cross-correlation between consecutive grayscale frames and between the
//! crops under consecutive bounding-box detections:
//!
//! ```text
//! NCC(p, c) = sum((p - mean(p)) * (c - mean(c)))
//!             / (sqrt(sum((c - mean(c))^2)) * sqrt(sum((p - mean(p))^2)))
//! ```
//!
//! A value near `1` means the scene barely changed; a sharp drop signals a
//! context change that should trigger re-scheduling.

use crate::bbox::BoundingBox;
use crate::image::GrayImage;
use crate::VideoError;

/// Size (width and height) that bounding-box crops are resampled to before
/// computing their NCC, so that boxes of different sizes remain comparable.
pub const REGION_NCC_SIZE: usize = 16;

/// Computes the normalized cross-correlation between two images of identical
/// dimensions.
///
/// Returns a value in `[-1, 1]`. When either image has (numerically) zero
/// variance the correlation is defined as `1.0` if both are flat and `0.0`
/// otherwise, which matches the intuitive reading of "nothing changed" /
/// "everything changed" used by the scheduler.
///
/// # Errors
///
/// Returns [`VideoError::DimensionMismatch`] when the images have different
/// sizes.
///
/// ```
/// use shift_video::{GrayImage, ncc};
///
/// let a = GrayImage::from_fn(8, 8, |x, y| (x + y) as f32 / 16.0);
/// let same = ncc(&a, &a)?;
/// assert!((same - 1.0).abs() < 1e-6);
/// # Ok::<(), shift_video::VideoError>(())
/// ```
pub fn ncc(p: &GrayImage, c: &GrayImage) -> Result<f64, VideoError> {
    if p.width() != c.width() || p.height() != c.height() {
        return Err(VideoError::DimensionMismatch {
            lhs: (p.width(), p.height()),
            rhs: (c.width(), c.height()),
        });
    }
    let mp = p.mean();
    let mc = c.mean();
    let mut num = 0.0f64;
    let mut dp = 0.0f64;
    let mut dc = 0.0f64;
    for (a, b) in p.pixels().iter().zip(c.pixels().iter()) {
        let da = *a as f64 - mp;
        let db = *b as f64 - mc;
        num += da * db;
        dp += da * da;
        dc += db * db;
    }
    const EPS: f64 = 1e-12;
    if dp < EPS && dc < EPS {
        return Ok(1.0);
    }
    if dp < EPS || dc < EPS {
        return Ok(0.0);
    }
    Ok((num / (dp.sqrt() * dc.sqrt())).clamp(-1.0, 1.0))
}

/// Computes the NCC between the regions of two frames selected by two
/// bounding boxes (the "bounding-box NCC" term of the scheduler's similarity
/// score).
///
/// Both crops are resampled to [`REGION_NCC_SIZE`]² before correlation so
/// that detections of different sizes can be compared. If either box does not
/// overlap its frame the function returns `0.0`, signalling maximal change —
/// this is what drives re-scheduling when a detection disappears.
pub fn ncc_regions(
    prev_frame: &GrayImage,
    prev_bbox: &BoundingBox,
    cur_frame: &GrayImage,
    cur_bbox: &BoundingBox,
) -> f64 {
    let prev_crop = prev_frame.crop(prev_bbox);
    let cur_crop = cur_frame.crop(cur_bbox);
    match (prev_crop, cur_crop) {
        (Some(p), Some(c)) => {
            let p = p.resized(REGION_NCC_SIZE, REGION_NCC_SIZE);
            let c = c.resized(REGION_NCC_SIZE, REGION_NCC_SIZE);
            ncc(&p, &c).unwrap_or(0.0)
        }
        _ => 0.0,
    }
}

/// Convenience helper computing the scheduler's combined similarity score:
/// `min(NCC(last image, image), NCC(last bbox crop, bbox crop))`.
pub fn frame_similarity(
    prev_frame: &GrayImage,
    prev_bbox: &BoundingBox,
    cur_frame: &GrayImage,
    cur_bbox: &BoundingBox,
) -> f64 {
    let image_ncc = ncc(prev_frame, cur_frame).unwrap_or(0.0);
    let bbox_ncc = ncc_regions(prev_frame, prev_bbox, cur_frame, cur_bbox);
    image_ncc.min(bbox_ncc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::{render_frame, SceneAppearance};

    fn gradient(w: usize, h: usize) -> GrayImage {
        GrayImage::from_fn(w, h, |x, y| (x as f32 + y as f32) / (w + h) as f32)
    }

    #[test]
    fn self_ncc_is_one() {
        let img = gradient(16, 16);
        assert!((ncc(&img, &img).unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn inverted_image_has_ncc_minus_one() {
        let img = gradient(16, 16);
        let inv = GrayImage::from_fn(16, 16, |x, y| 1.0 - img.get(x, y));
        assert!((ncc(&img, &inv).unwrap() + 1.0).abs() < 1e-6);
    }

    #[test]
    fn flat_images_are_perfectly_similar() {
        let a = GrayImage::from_fn(8, 8, |_, _| 0.3);
        let b = GrayImage::from_fn(8, 8, |_, _| 0.9);
        // Both have zero variance: defined as identical structure.
        assert_eq!(ncc(&a, &b).unwrap(), 1.0);
    }

    #[test]
    fn flat_vs_textured_is_zero() {
        let flat = GrayImage::from_fn(8, 8, |_, _| 0.5);
        let tex = gradient(8, 8);
        assert_eq!(ncc(&flat, &tex).unwrap(), 0.0);
    }

    #[test]
    fn dimension_mismatch_is_error() {
        let a = GrayImage::new(4, 4);
        let b = GrayImage::new(8, 8);
        assert!(matches!(
            ncc(&a, &b),
            Err(VideoError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn ncc_in_unit_range_for_rendered_frames() {
        let app_a = SceneAppearance::default();
        let app_b = SceneAppearance {
            background_id: 3,
            clutter: 0.9,
            ..SceneAppearance::default()
        };
        let a = render_frame(48, 48, &app_a, None, 1);
        let b = render_frame(48, 48, &app_b, None, 2);
        let v = ncc(&a, &b).unwrap();
        assert!((-1.0..=1.0).contains(&v));
    }

    #[test]
    fn background_change_lowers_ncc() {
        let same = SceneAppearance::default();
        let different = SceneAppearance {
            background_id: 9,
            lighting: 0.3,
            clutter: 0.9,
            ..SceneAppearance::default()
        };
        let a = render_frame(48, 48, &same, None, 10);
        let b = render_frame(48, 48, &same, None, 11);
        let c = render_frame(48, 48, &different, None, 12);
        let similar = ncc(&a, &b).unwrap();
        let dissimilar = ncc(&a, &c).unwrap();
        assert!(
            similar > dissimilar,
            "same background should correlate more: {similar} vs {dissimilar}"
        );
        assert!(similar > 0.8);
    }

    #[test]
    fn region_ncc_of_identical_crops_is_high() {
        let app = SceneAppearance::default();
        let bbox = BoundingBox::from_center(24.0, 24.0, 12.0, 12.0);
        let frame = render_frame(48, 48, &app, Some(&bbox), 5);
        let v = ncc_regions(&frame, &bbox, &frame, &bbox);
        assert!(v > 0.99, "identical crops should correlate, got {v}");
    }

    #[test]
    fn region_ncc_with_out_of_frame_box_is_zero() {
        let frame = render_frame(32, 32, &SceneAppearance::default(), None, 5);
        let inside = BoundingBox::from_center(16.0, 16.0, 8.0, 8.0);
        let outside = BoundingBox::new(500.0, 500.0, 8.0, 8.0);
        assert_eq!(ncc_regions(&frame, &inside, &frame, &outside), 0.0);
    }

    #[test]
    fn frame_similarity_is_min_of_terms() {
        let app = SceneAppearance::default();
        let bbox = BoundingBox::from_center(20.0, 20.0, 10.0, 10.0);
        let a = render_frame(40, 40, &app, Some(&bbox), 1);
        let moved = bbox.translated(10.0, 0.0);
        let b = render_frame(40, 40, &app, Some(&moved), 2);
        let sim = frame_similarity(&a, &bbox, &b, &moved);
        let img = ncc(&a, &b).unwrap();
        let reg = ncc_regions(&a, &bbox, &b, &moved);
        assert!((sim - img.min(reg)).abs() < 1e-12);
    }
}
