//! Multi-SoC cluster scheduler: shards sessions across simulated nodes.
//!
//! The paper's runtime schedules one SoC; the ROADMAP's north star is heavy
//! traffic from millions of users. This module adds the placement layer on
//! top of the PR-9 session protocol: a [`ClusterScheduler`] owns N nodes of
//! heterogeneous [`DeviceClass`]es, each running its own [`FleetService`]
//! with its own engine and per-platform characterization. Admission stays
//! delegated — the cluster only picks *which* node probes an arrival, the
//! node's own projection says yes or no — and a periodic rebalance pass
//! live-migrates one session from the most- to the least-loaded node:
//! the stream re-attaches on the destination resuming at the frame it had
//! reached ([`AttachRequest::with_start_frame`]), the model re-warm is
//! charged by the destination's loader exactly like any attach, and the
//! state transfer itself is costed through [`shift_soc::network`] and lands
//! on the migrated stream's next frame like a loader miss.
//!
//! Everything is keyed on the cluster's own discrete clock (one sweep over
//! all nodes per tick, nodes stepped in index order), so a run is
//! byte-identical for any worker count and across the event-driven and
//! lockstep inner loops.

use crate::fleet::FleetFrameOutcome;
use crate::service::{
    AttachRequest, FleetService, RejectReason, ServicePolicy, SessionEvent, SessionId,
    SessionRequest,
};
use crate::{characterize::Characterization, des::ExecutionMode, fleet::FleetBuilder, ShiftError};
use serde::{Deserialize, Serialize};
use shift_soc::{DeviceClass, ExecutionEngine, NetworkLink};

/// Opaque identity of one cluster session, minted at schedule time (1-based,
/// in schedule order) and never reused. Distinct from the per-node
/// [`SessionId`]s a session's incarnations are known by locally.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ClusterSessionId(u64);

impl ClusterSessionId {
    /// The raw identity value (1-based, in schedule order).
    pub fn value(self) -> u64 {
        self.0
    }

    /// Reconstructs an identity from its raw value (for trace replay).
    pub fn from_value(value: u64) -> Self {
        Self(value)
    }
}

impl std::fmt::Display for ClusterSessionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cluster-session-{}", self.0)
    }
}

/// Cluster-level policy knobs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterPolicy {
    /// Per-node admission policy (every node runs the same one).
    pub service: ServicePolicy,
    /// The link model state crosses during a live migration.
    pub link: NetworkLink,
    /// Serialized stream state shipped per migration, megabytes (context
    /// graph, tracker state, warm statistics — not the model weights, which
    /// the destination re-warms through its own loader).
    pub migration_payload_mb: f64,
    /// Consider one migration every this many cluster ticks (`0` disables
    /// rebalancing).
    pub rebalance_period: u64,
    /// Minimum normalized-load gap (sessions per capacity weight) between
    /// the most- and least-loaded node before a migration is worth its cost.
    pub rebalance_gap: f64,
}

impl ClusterPolicy {
    /// The default policy: per-node [`ServicePolicy::defaults`], a Wi-Fi
    /// class interconnect, 24 MB of stream state per move, a rebalance scan
    /// every 8 ticks gated on a 1.0 normalized-load gap.
    pub fn defaults() -> Self {
        Self {
            service: ServicePolicy::defaults(),
            link: NetworkLink::wifi(),
            migration_payload_mb: 24.0,
            rebalance_period: 8,
            rebalance_gap: 1.0,
        }
    }

    /// Returns a copy with a different rebalance cadence and gap.
    pub fn with_rebalance(mut self, period: u64, gap: f64) -> Self {
        self.rebalance_period = period;
        self.rebalance_gap = gap;
        self
    }

    /// Returns a copy with a different interconnect.
    pub fn with_link(mut self, link: NetworkLink) -> Self {
        self.link = link;
        self
    }
}

impl Default for ClusterPolicy {
    fn default() -> Self {
        Self::defaults()
    }
}

/// Cluster-level protocol events, stamped with the cluster clock.
#[derive(Debug, Clone, PartialEq)]
pub enum ClusterEvent {
    /// The session was placed and admitted on a node.
    Admitted {
        /// The cluster identity.
        session: ClusterSessionId,
        /// The node that admitted it.
        node: usize,
        /// The goal the node's admission granted.
        admitted_goal: f64,
    },
    /// Every candidate node rejected the session.
    Rejected {
        /// The cluster identity.
        session: ClusterSessionId,
        /// The last candidate's rejection reason.
        reason: RejectReason,
    },
    /// The session detached by request.
    Detached {
        /// The cluster identity.
        session: ClusterSessionId,
        /// The node it detached from.
        node: usize,
        /// Total frames processed across all nodes it ran on.
        frames: usize,
    },
    /// A node's overload shedding evicted the session.
    Shed {
        /// The cluster identity.
        session: ClusterSessionId,
        /// The node that shed it.
        node: usize,
    },
    /// The session was live-migrated between nodes.
    Migrated {
        /// The cluster identity.
        session: ClusterSessionId,
        /// Source node.
        from: usize,
        /// Destination node.
        to: usize,
        /// Scenario frame the destination resumed at.
        resumed_at_frame: usize,
    },
    /// A request named a session this cluster never scheduled (or one
    /// already gone).
    UnknownSession {
        /// The unknown identity.
        session: ClusterSessionId,
    },
}

/// One completed live migration (the audit trail behind the capacity
/// artifact's migration count).
#[derive(Debug, Clone, PartialEq)]
pub struct MigrationRecord {
    /// Cluster tick the move happened at.
    pub tick: u64,
    /// The moved session.
    pub session: ClusterSessionId,
    /// Source node.
    pub from: usize,
    /// Destination node.
    pub to: usize,
    /// Scenario frame the destination resumed at.
    pub resumed_at_frame: usize,
    /// State-transfer latency charged to the stream, seconds.
    pub transfer_s: f64,
    /// State-transfer energy charged to the stream, joules.
    pub transfer_j: f64,
}

/// One frame outcome, tagged with the node that produced it.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterFrameOutcome {
    /// Index of the producing node.
    pub node: usize,
    /// The node-local fleet outcome.
    pub inner: FleetFrameOutcome,
}

/// Lifecycle snapshot of one cluster session.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterSessionRecord {
    /// The cluster identity.
    pub session: ClusterSessionId,
    /// Its label.
    pub name: String,
    /// The node it currently (or last) ran on, when ever admitted.
    pub node: Option<usize>,
    /// The device class of that node.
    pub class: Option<DeviceClass>,
    /// `None` when admitted (or still pending); the final rejection reason
    /// otherwise.
    pub rejected: Option<RejectReason>,
    /// Whether the session is attached right now.
    pub attached: bool,
    /// Whether a node's overload shedding evicted it.
    pub shed: bool,
    /// The goal the request asked for.
    pub requested_goal: f64,
    /// The goal its current (or last) node admitted it at.
    pub admitted_goal: f64,
    /// Completed live migrations.
    pub migrations: u32,
    /// Frames processed across every node it ran on.
    pub frames: usize,
}

/// Where a cluster session is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Phase {
    /// Scheduled, not yet due.
    Pending,
    /// Admitted and running on `node`.
    Attached,
    /// Every candidate node rejected it.
    Rejected(RejectReason),
    /// Detached by request.
    Detached,
    /// Evicted by a node's overload shedding.
    Shed,
}

/// Cluster-side bookkeeping for one session.
#[derive(Debug, Clone)]
struct LedgerEntry {
    request: AttachRequest,
    phase: Phase,
    node: Option<usize>,
    local: Option<SessionId>,
    admitted_goal: f64,
    /// Frames completed on nodes the session no longer runs on.
    frames_prior: usize,
    migrations: u32,
}

/// A scheduled cluster operation.
#[derive(Debug, Clone)]
enum ClusterOp {
    /// Place and admit ledger entry `usize`.
    Attach(usize),
    /// Detach a session.
    Detach(ClusterSessionId),
}

/// One node: a device class and its private service stack.
#[derive(Debug, Clone)]
struct Node {
    class: DeviceClass,
    service: FleetService,
}

/// Builder for a [`ClusterScheduler`].
///
/// Each node brings its own [`ExecutionEngine`] (over the platform of its
/// [`DeviceClass`]) and the characterization computed *on that platform* —
/// an OAK-D-only node only knows the models its VPU can run.
#[derive(Debug)]
pub struct ClusterBuilder {
    policy: ClusterPolicy,
    mode: ExecutionMode,
    nodes: Vec<(DeviceClass, ExecutionEngine, Characterization)>,
}

impl ClusterBuilder {
    /// Starts an empty builder with [`ClusterPolicy::defaults`].
    pub fn new() -> Self {
        Self {
            policy: ClusterPolicy::defaults(),
            mode: ExecutionMode::default(),
            nodes: Vec::new(),
        }
    }

    /// Sets the cluster policy.
    pub fn policy(mut self, policy: ClusterPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Selects the per-node inner loop (event-driven is the default).
    pub fn execution_mode(mut self, mode: ExecutionMode) -> Self {
        self.mode = mode;
        self
    }

    /// Adds one node of `class` with its engine and per-platform
    /// characterization.
    pub fn node(
        mut self,
        class: DeviceClass,
        engine: ExecutionEngine,
        characterization: Characterization,
    ) -> Self {
        self.nodes.push((class, engine, characterization));
        self
    }

    /// Builds the scheduler.
    ///
    /// # Errors
    ///
    /// Propagates node-service construction errors.
    pub fn build(self) -> Result<ClusterScheduler, ShiftError> {
        let mut nodes = Vec::with_capacity(self.nodes.len());
        for (class, engine, characterization) in self.nodes {
            let service = FleetBuilder::new(engine, &characterization)
                .execution_mode(self.mode)
                .build_service(self.policy.service)?;
            nodes.push(Node { class, service });
        }
        Ok(ClusterScheduler {
            policy: self.policy,
            nodes,
            ledger: Vec::new(),
            ops: Vec::new(),
            next_op: 0,
            clock: 0,
            migrations: Vec::new(),
            log: Vec::new(),
        })
    }
}

impl Default for ClusterBuilder {
    fn default() -> Self {
        Self::new()
    }
}

/// The placement scheduler over N per-node [`FleetService`]s.
///
/// Schedule arrivals and departures on the cluster clock, then drive with
/// [`ClusterScheduler::run_until_idle`]. Each tick processes due operations,
/// steps every node once in index order, and (on the rebalance cadence)
/// considers one live migration from the most- to the least-loaded node.
#[derive(Debug, Clone)]
pub struct ClusterScheduler {
    policy: ClusterPolicy,
    nodes: Vec<Node>,
    ledger: Vec<LedgerEntry>,
    /// Scheduled operations ordered by (tick, insertion sequence);
    /// `next_op` is the consumption cursor.
    ops: Vec<(u64, ClusterOp)>,
    next_op: usize,
    clock: u64,
    migrations: Vec<MigrationRecord>,
    log: Vec<(u64, ClusterEvent)>,
}

impl ClusterScheduler {
    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The device class of node `index`.
    ///
    /// # Panics
    ///
    /// Panics when `index` is out of range.
    pub fn node_class(&self, index: usize) -> DeviceClass {
        self.nodes[index].class
    }

    /// The service stack of node `index` (for inspecting telemetry, session
    /// records and stream views).
    ///
    /// # Panics
    ///
    /// Panics when `index` is out of range.
    pub fn node(&self, index: usize) -> &FleetService {
        &self.nodes[index].service
    }

    /// The cluster policy.
    pub fn policy(&self) -> &ClusterPolicy {
        &self.policy
    }

    /// The cluster clock (sweeps completed so far).
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// Completed live migrations, in occurrence order.
    pub fn migrations(&self) -> &[MigrationRecord] {
        &self.migrations
    }

    /// Takes the clock-stamped cluster event log accumulated so far.
    pub fn drain_events(&mut self) -> Vec<(u64, ClusterEvent)> {
        std::mem::take(&mut self.log)
    }

    /// Sessions currently attached somewhere in the cluster (the ledger's
    /// view; [`ClusterScheduler::node`] exposes each node's own count for
    /// conservation checks).
    pub fn attached_sessions(&self) -> usize {
        self.ledger
            .iter()
            .filter(|e| e.phase == Phase::Attached)
            .count()
    }

    /// Lifecycle snapshot of every session ever scheduled, in schedule
    /// order.
    pub fn sessions(&self) -> Vec<ClusterSessionRecord> {
        self.ledger
            .iter()
            .enumerate()
            .map(|(index, e)| {
                let live = match (e.phase, e.node, e.local) {
                    (Phase::Attached, Some(node), Some(local)) => self.nodes[node]
                        .service
                        .stream_of(local)
                        .map(|h| {
                            self.nodes[node]
                                .service
                                .fleet()
                                .stream(h)
                                .frames_processed()
                        })
                        .unwrap_or(0),
                    _ => 0,
                };
                ClusterSessionRecord {
                    session: ClusterSessionId(index as u64 + 1),
                    name: e.request.name.clone(),
                    node: e.node,
                    class: e.node.map(|n| self.nodes[n].class),
                    rejected: match e.phase {
                        Phase::Rejected(reason) => Some(reason),
                        _ => None,
                    },
                    attached: e.phase == Phase::Attached,
                    shed: e.phase == Phase::Shed,
                    requested_goal: e.request.config.accuracy_goal,
                    admitted_goal: e.admitted_goal,
                    migrations: e.migrations,
                    frames: e.frames_prior + live,
                }
            })
            .collect()
    }

    /// Schedules an attach for cluster tick `tick`, minting the session's
    /// cluster identity immediately. Placement happens when the tick
    /// arrives.
    pub fn schedule_attach(&mut self, tick: u64, request: AttachRequest) -> ClusterSessionId {
        let id = ClusterSessionId(self.ledger.len() as u64 + 1);
        self.ledger.push(LedgerEntry {
            admitted_goal: request.config.accuracy_goal,
            request,
            phase: Phase::Pending,
            node: None,
            local: None,
            frames_prior: 0,
            migrations: 0,
        });
        self.push_op(tick, ClusterOp::Attach(self.ledger.len() - 1));
        id
    }

    /// Schedules a detach for cluster tick `tick`. A session already gone
    /// by then (shed, detached, rejected) is answered with
    /// [`ClusterEvent::UnknownSession`].
    pub fn schedule_detach(&mut self, tick: u64, session: ClusterSessionId) {
        self.push_op(tick, ClusterOp::Detach(session));
    }

    fn push_op(&mut self, tick: u64, op: ClusterOp) {
        // Ops are appended in schedule order and consumed in (tick, order)
        // order; a tick already in the past fires on the next sweep.
        let tick = tick.max(self.clock);
        let at = self.ops[self.next_op..]
            .iter()
            .position(|&(t, _)| t > tick)
            .map(|p| self.next_op + p)
            .unwrap_or(self.ops.len());
        self.ops.insert(at, (tick, op));
    }

    /// Runs until every scheduled operation has fired and every node is
    /// drained, returning all frame outcomes in production order (tick by
    /// tick, node-index order within a tick — a total order independent of
    /// worker count and inner-loop mode).
    ///
    /// # Errors
    ///
    /// Propagates the first unrecoverable node error.
    pub fn run_until_idle(&mut self) -> Result<Vec<ClusterFrameOutcome>, ShiftError> {
        let mut outcomes = Vec::new();
        loop {
            self.process_due_ops();
            let mut progressed = false;
            for node in 0..self.nodes.len() {
                if let Some(inner) = self.nodes[node].service.step()? {
                    outcomes.push(ClusterFrameOutcome { node, inner });
                    progressed = true;
                }
                self.sync_node_events(node);
            }
            if self.policy.rebalance_period > 0
                && self
                    .clock
                    .checked_rem(self.policy.rebalance_period)
                    .is_some_and(|r| r == self.policy.rebalance_period - 1)
            {
                self.try_migrate();
            }
            self.clock += 1;
            if !progressed && self.next_op >= self.ops.len() {
                return Ok(outcomes);
            }
        }
    }

    /// Pops and processes every operation due at or before the cluster
    /// clock, in schedule order.
    fn process_due_ops(&mut self) {
        while self
            .ops
            .get(self.next_op)
            .is_some_and(|&(tick, _)| tick <= self.clock)
        {
            let (_, op) = self.ops[self.next_op].clone();
            self.next_op += 1;
            match op {
                ClusterOp::Attach(index) => self.place(index),
                ClusterOp::Detach(id) => self.detach(id),
            }
        }
    }

    /// Normalized load of node `index`: attached sessions that still have
    /// frames to play, divided by the class's capacity weight.
    fn node_load(&self, index: usize) -> f64 {
        let node = &self.nodes[index];
        let busy = self
            .ledger
            .iter()
            .filter(|e| e.phase == Phase::Attached && e.node == Some(index))
            .filter(|e| {
                e.local
                    .and_then(|local| node.service.stream_of(local))
                    .is_some_and(|h| !node.service.fleet().stream(h).is_idle())
            })
            .count();
        busy as f64 / node.class.capacity_weight()
    }

    /// Places ledger entry `index`: candidate nodes are probed in ascending
    /// (normalized load, node index) order and the first node whose own
    /// admission says yes wins.
    fn place(&mut self, index: usize) {
        let id = ClusterSessionId(index as u64 + 1);
        let request = self.ledger[index].request.clone();
        let mut order: Vec<usize> = (0..self.nodes.len()).collect();
        order.sort_by(|&a, &b| {
            self.node_load(a)
                .partial_cmp(&self.node_load(b))
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        let mut last_reason = RejectReason::InfeasibleGoal;
        for node in order {
            let event = self.nodes[node]
                .service
                .submit(SessionRequest::Attach(request.clone()));
            match event {
                SessionEvent::Admitted {
                    session,
                    admitted_goal,
                    ..
                } => {
                    // Admission may have shed a lower-priority session on
                    // this node to make room — fold that in first.
                    self.sync_node_events(node);
                    let entry = &mut self.ledger[index];
                    entry.phase = Phase::Attached;
                    entry.node = Some(node);
                    entry.local = Some(session);
                    entry.admitted_goal = admitted_goal;
                    self.log.push((
                        self.clock,
                        ClusterEvent::Admitted {
                            session: id,
                            node,
                            admitted_goal,
                        },
                    ));
                    return;
                }
                SessionEvent::Rejected { reason, .. } => {
                    self.sync_node_events(node);
                    last_reason = reason;
                }
                _ => unreachable!("attach answers Admitted or Rejected"),
            }
        }
        self.ledger[index].phase = Phase::Rejected(last_reason);
        self.log.push((
            self.clock,
            ClusterEvent::Rejected {
                session: id,
                reason: last_reason,
            },
        ));
    }

    /// Detaches a session wherever it currently runs.
    fn detach(&mut self, id: ClusterSessionId) {
        let Some(index) = (id.0 as usize)
            .checked_sub(1)
            .filter(|&i| i < self.ledger.len())
        else {
            self.log
                .push((self.clock, ClusterEvent::UnknownSession { session: id }));
            return;
        };
        let (node, local) = match (&self.ledger[index].phase, self.ledger[index].node) {
            (Phase::Attached, Some(node)) => (node, self.ledger[index].local.expect("attached")),
            _ => {
                self.log
                    .push((self.clock, ClusterEvent::UnknownSession { session: id }));
                return;
            }
        };
        let event = self.nodes[node]
            .service
            .submit(SessionRequest::Detach(local));
        self.sync_node_events(node);
        let frames = match event {
            SessionEvent::Detached { frames, .. } => frames,
            _ => 0,
        };
        let entry = &mut self.ledger[index];
        entry.phase = Phase::Detached;
        entry.frames_prior += frames;
        let total = entry.frames_prior;
        self.log.push((
            self.clock,
            ClusterEvent::Detached {
                session: id,
                node,
                frames: total,
            },
        ));
    }

    /// Folds a node's protocol events into the ledger. Only shed events
    /// matter here — admits, rejects and detaches are translated directly at
    /// their submission sites.
    fn sync_node_events(&mut self, node: usize) {
        for (_, event) in self.nodes[node].service.drain_events() {
            let SessionEvent::Shed { session, .. } = event else {
                continue;
            };
            let Some(index) = self.ledger.iter().position(|e| {
                e.phase == Phase::Attached && e.node == Some(node) && e.local == Some(session)
            }) else {
                continue;
            };
            let frames = self.nodes[node]
                .service
                .sessions()
                .iter()
                .find(|r| r.session == session)
                .map(|r| r.frames)
                .unwrap_or(0);
            let entry = &mut self.ledger[index];
            entry.phase = Phase::Shed;
            entry.frames_prior += frames;
            self.log.push((
                self.clock,
                ClusterEvent::Shed {
                    session: ClusterSessionId(index as u64 + 1),
                    node,
                },
            ));
        }
    }

    /// Considers one live migration: when the normalized-load gap between
    /// the most- and least-loaded node exceeds the policy gap, the source's
    /// lowest-priority session (lowest deadline class, then lowest cluster
    /// id) re-attaches on the destination resuming at the frame it reached.
    /// The destination is attached *first*; only an admitted move detaches
    /// the source, so a refused migration leaves the session untouched.
    fn try_migrate(&mut self) {
        if self.nodes.len() < 2 {
            return;
        }
        let loads: Vec<f64> = (0..self.nodes.len()).map(|i| self.node_load(i)).collect();
        let src = (0..loads.len())
            .max_by(|&a, &b| {
                loads[a]
                    .partial_cmp(&loads[b])
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(b.cmp(&a))
            })
            .expect("non-empty");
        let dst = (0..loads.len())
            .min_by(|&a, &b| {
                loads[a]
                    .partial_cmp(&loads[b])
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.cmp(&b))
            })
            .expect("non-empty");
        if src == dst || loads[src] - loads[dst] < self.policy.rebalance_gap {
            return;
        }
        // Only move when the move strictly shrinks the imbalance — moving a
        // node's sole session to an empty peer just mirrors the gap and
        // would ping-pong on every cadence.
        let after_src = loads[src] - 1.0 / self.nodes[src].class.capacity_weight();
        let after_dst = loads[dst] + 1.0 / self.nodes[dst].class.capacity_weight();
        if (after_src - after_dst).abs() >= loads[src] - loads[dst] - 1e-9 {
            return;
        }
        // Victim: the source's cheapest still-running session.
        let Some(index) = self
            .ledger
            .iter()
            .enumerate()
            .filter(|(_, e)| e.phase == Phase::Attached && e.node == Some(src))
            .filter(|(_, e)| {
                e.local
                    .and_then(|local| self.nodes[src].service.stream_of(local))
                    .is_some_and(|h| !self.nodes[src].service.fleet().stream(h).is_idle())
            })
            .min_by_key(|&(i, e)| (e.request.deadline.priority(), i))
            .map(|(i, _)| i)
        else {
            return;
        };
        let local = self.ledger[index].local.expect("attached");
        let Some(handle) = self.nodes[src].service.stream_of(local) else {
            return;
        };
        let done_here = self.nodes[src]
            .service
            .fleet()
            .stream(handle)
            .frames_processed();
        let resumed_at_frame = self.ledger[index].frames_prior + done_here;
        if resumed_at_frame >= self.ledger[index].request.scenario.num_frames() {
            return;
        }
        // The state transfer rides the interconnect; a link outage at this
        // tick skips the round (the next cadence retries).
        let Some(report) =
            self.policy
                .link
                .round_trip(self.clock as usize, self.policy.migration_payload_mb, 0.0)
        else {
            return;
        };
        let request = self.ledger[index]
            .request
            .clone()
            .with_start_frame(resumed_at_frame);
        let event = self.nodes[dst]
            .service
            .submit(SessionRequest::Attach(request));
        self.sync_node_events(dst);
        let SessionEvent::Admitted {
            session: new_local,
            admitted_goal,
            ..
        } = event
        else {
            // The destination refused; the session stays where it was.
            return;
        };
        let _ = self.nodes[src]
            .service
            .submit(SessionRequest::Detach(local));
        self.sync_node_events(src);
        // The transfer lands on the migrated stream's next frame like a
        // loader miss; the model re-warm was already charged by the
        // destination's attach path.
        self.nodes[dst]
            .service
            .charge_session_load(new_local, report.latency_s, report.energy_j);
        let entry = &mut self.ledger[index];
        entry.node = Some(dst);
        entry.local = Some(new_local);
        entry.admitted_goal = admitted_goal;
        entry.frames_prior = resumed_at_frame;
        entry.migrations += 1;
        let session = ClusterSessionId(index as u64 + 1);
        self.migrations.push(MigrationRecord {
            tick: self.clock,
            session,
            from: src,
            to: dst,
            resumed_at_frame,
            transfer_s: report.latency_s,
            transfer_j: report.energy_j,
        });
        self.log.push((
            self.clock,
            ClusterEvent::Migrated {
                session,
                from: src,
                to: dst,
                resumed_at_frame,
            },
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::characterize::characterize;
    use crate::config::ShiftConfig;
    use crate::service::DeadlineClass;
    use shift_models::{ModelZoo, ResponseModel};
    use shift_video::{CharacterizationDataset, Scenario};

    fn builder_with(classes: &[DeviceClass], seed: u64) -> ClusterBuilder {
        let dataset = CharacterizationDataset::generate(60, seed);
        let mut builder = ClusterBuilder::new();
        for &class in classes {
            let engine = ExecutionEngine::new(
                class.platform(),
                ModelZoo::standard(),
                ResponseModel::new(seed),
            );
            let characterization = characterize(&engine, &dataset);
            builder = builder.node(class, engine, characterization);
        }
        builder
    }

    fn attach(name: &str, frames: usize) -> AttachRequest {
        AttachRequest::new(
            name,
            Scenario::scenario_3().with_num_frames(frames),
            ShiftConfig::paper_defaults().with_accuracy_goal(0.3),
            DeadlineClass::Standard,
        )
    }

    #[test]
    fn placement_spreads_sessions_across_nodes() {
        let mut cluster = builder_with(&[DeviceClass::NxClass, DeviceClass::NxClass], 5)
            .policy(ClusterPolicy::defaults().with_rebalance(0, 1.0))
            .build()
            .unwrap();
        cluster.schedule_attach(0, attach("a", 12));
        cluster.schedule_attach(0, attach("b", 12));
        cluster.run_until_idle().unwrap();
        let sessions = cluster.sessions();
        assert_eq!(sessions.len(), 2);
        assert_eq!(sessions[0].node, Some(0), "first arrival lands on node 0");
        assert_eq!(sessions[1].node, Some(1), "second spreads to node 1");
        assert_eq!(sessions[0].frames, 12);
        assert_eq!(sessions[1].frames, 12);
    }

    #[test]
    fn migration_moves_a_session_and_conserves_frames() {
        // Placement puts the two long sessions on node 0 (the short one
        // holds node 1's slot at placement time). Once the short session
        // drains, node 0 carries 2.0 normalized load against node 1's 0 —
        // the rebalance pass must move exactly one long session over (the
        // second move would not shrink the imbalance), and the moved stream
        // must play every frame exactly once.
        let mut cluster = builder_with(&[DeviceClass::NxClass, DeviceClass::NxClass], 7)
            .policy(ClusterPolicy::defaults().with_rebalance(4, 0.9))
            .build()
            .unwrap();
        let long_a = cluster.schedule_attach(0, attach("long-a", 40));
        cluster.schedule_attach(0, attach("short", 4));
        cluster.schedule_attach(0, attach("long-b", 40));
        let outcomes = cluster.run_until_idle().unwrap();
        assert_eq!(
            cluster.migrations().len(),
            1,
            "one move balances the cluster; more would ping-pong"
        );
        let moved = &cluster.migrations()[0];
        assert_eq!(moved.session, long_a, "lowest cluster id moves first");
        assert_eq!((moved.from, moved.to), (0, 1));
        assert!(moved.resumed_at_frame > 0, "resumes mid-scenario");
        assert!(moved.transfer_s > 0.0);
        let sessions = cluster.sessions();
        assert_eq!(sessions[0].frames, 40, "no frame lost or duplicated");
        assert_eq!(sessions[2].frames, 40);
        assert_eq!(sessions[0].migrations, 1);
        assert_eq!(sessions[0].node, Some(1));
        assert_eq!(outcomes.len(), 84, "every scheduled frame ran exactly once");
    }

    #[test]
    fn ledger_and_node_session_counts_agree() {
        let mut cluster = builder_with(
            &[
                DeviceClass::NxClass,
                DeviceClass::OakDOnly,
                DeviceClass::GpuRich,
            ],
            9,
        )
        .build()
        .unwrap();
        for i in 0..4 {
            cluster.schedule_attach(i, attach(&format!("s{i}"), 20));
        }
        cluster.run_until_idle().unwrap();
        let node_total: usize = (0..cluster.node_count())
            .map(|i| cluster.node(i).active_sessions())
            .sum();
        assert_eq!(cluster.attached_sessions(), node_total);
    }

    #[test]
    fn detach_of_a_gone_session_answers_unknown() {
        let mut cluster = builder_with(&[DeviceClass::NxClass], 11).build().unwrap();
        let id = cluster.schedule_attach(0, attach("once", 6));
        cluster.schedule_detach(2, id);
        cluster.schedule_detach(5, id);
        cluster.schedule_detach(5, ClusterSessionId::from_value(99));
        cluster.run_until_idle().unwrap();
        let events = cluster.drain_events();
        let unknowns = events
            .iter()
            .filter(|(_, e)| matches!(e, ClusterEvent::UnknownSession { .. }))
            .count();
        assert_eq!(
            unknowns, 2,
            "second detach and bogus id both answer unknown"
        );
    }

    #[test]
    fn identical_schedules_replay_identically_across_modes() {
        let run = |mode: ExecutionMode| {
            let mut cluster = builder_with(&[DeviceClass::NxClass, DeviceClass::GpuRich], 13)
                .execution_mode(mode)
                .policy(ClusterPolicy::defaults().with_rebalance(4, 0.9))
                .build()
                .unwrap();
            cluster.schedule_attach(0, attach("a", 24));
            cluster.schedule_attach(1, attach("b", 6));
            cluster.schedule_attach(3, attach("c", 10));
            let outcomes = cluster.run_until_idle().unwrap();
            (outcomes, cluster.sessions(), cluster.drain_events())
        };
        assert_eq!(
            run(ExecutionMode::EventDriven),
            run(ExecutionMode::Lockstep)
        );
    }
}
