//! The fleet runtime: many concurrent video streams on one shared SoC.
//!
//! The paper schedules **one** stream per SoC. Production deployments
//! (multi-camera drones, roadside units, warehouse fleets) multiplex many
//! streams over the same accelerators, memory pools and power budget — the
//! situation the paper's shared-memory loader (§III-C) only hints at.
//! [`FleetRuntime`] generalizes the single-stream loop:
//!
//! * every stream keeps its **own** [`StreamAgent`] (context detector,
//!   confidence-graph scheduler, momentum, accuracy goal), so per-stream
//!   policy is untouched;
//! * all streams share **one** [`ExecutionEngine`], **one** LRU
//!   [`DynamicModelLoader`] (the eviction set spans every stream) and one
//!   [`OccupancyTracker`] — an accelerator busy until `t` charges the wait to
//!   the next frame scheduled on it;
//! * a [`MemoryArbiter`] pins each stream's current pair so a peer's miss
//!   treats it as an eviction victim of last resort: under memory pressure
//!   the missing stream first *degrades* to its next-best loadable pair,
//!   and only when every candidate is pin-blocked does it evict a pinned
//!   model (which its owner then reloads);
//! * two streams resident on the same (model, accelerator) pair share the
//!   load cost: the second stream finds the model already resident and pays
//!   nothing (cross-stream model reuse).
//!
//! Frame admission is round-robin by default; the [`FleetConfig::fairness`]
//! knob trades strict fairness (admit the most-behind stream) against
//! throughput (admit the stream whose accelerator frees up first).
//!
//! A fleet of one behaves exactly like [`ShiftRuntime`]: same decisions,
//! same costs, zero queueing — `ShiftRuntime` is the single-stream special
//! case the fleet composes.
//!
//! [`ShiftRuntime`]: crate::runtime::ShiftRuntime

use crate::characterize::Characterization;
use crate::config::ShiftConfig;
use crate::des::{EventKind, EventQueue, ExecutionMode, TraceEvent};
use crate::loader::DynamicModelLoader;
use crate::runtime::{FrameOutcome, LoadCharge, ResilienceCounters, StreamAgent};
use crate::scheduler::{CandidatePair, Decision};
use crate::ShiftError;
use serde::{Deserialize, Serialize};
use shift_soc::{
    ExecutionEngine, FaultInjector, FaultPlan, InferenceReport, MemoryArbiter, OccupancyTracker,
    SocError,
};
use shift_video::{Frame, FrameStream, Scenario};

/// Description of one stream joining a fleet: a scenario to play and the
/// SHIFT configuration (including the per-stream accuracy goal) to play it
/// under.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamSpec {
    /// Human-readable stream label (used in summaries and tables).
    pub name: String,
    /// The video the stream plays.
    pub scenario: Scenario,
    /// Per-stream SHIFT configuration; `config.accuracy_goal` is the
    /// stream's individual accuracy goal.
    pub config: ShiftConfig,
    /// First scenario frame the stream plays (earlier frames are skipped at
    /// attach). `0` plays the scenario from the top; a live migration resumes
    /// a stream on another node from the frame it had reached.
    pub start_frame: usize,
}

impl StreamSpec {
    /// Creates a stream spec that plays its scenario from the first frame.
    pub fn new(name: impl Into<String>, scenario: Scenario, config: ShiftConfig) -> Self {
        Self {
            name: name.into(),
            scenario,
            config,
            start_frame: 0,
        }
    }

    /// Resumes the scenario at `start_frame` instead of frame 0.
    pub fn with_start_frame(mut self, start_frame: usize) -> Self {
        self.start_frame = start_frame;
        self
    }
}

/// Opaque handle to one stream slot inside a [`FleetRuntime`].
///
/// Handles are minted by [`FleetRuntime::attach_stream`] (or listed by
/// [`FleetRuntime::handles`]) and stay valid for the fleet's lifetime,
/// including after the stream detaches. The [`FleetFrameOutcome::stream`]
/// index of an outcome converts back via [`StreamHandle::from_index`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct StreamHandle(pub(crate) usize);

impl StreamHandle {
    /// The handle's slot index (the value [`FleetFrameOutcome::stream`]
    /// carries).
    pub fn index(self) -> usize {
        self.0
    }

    /// Reconstructs a handle from a slot index (e.g. from
    /// [`FleetFrameOutcome::stream`]). The handle is only meaningful for the
    /// fleet the index came from.
    pub fn from_index(index: usize) -> Self {
        Self(index)
    }
}

/// Read-only view of one stream slot, keyed by [`StreamHandle`].
#[derive(Debug, Clone, Copy)]
pub struct StreamView<'a> {
    state: &'a StreamState,
}

impl StreamView<'_> {
    /// The stream's label.
    pub fn name(&self) -> &str {
        &self.state.name
    }

    /// The stream's accuracy goal.
    pub fn goal(&self) -> f64 {
        self.state.agent.config().accuracy_goal
    }

    /// The stream's agent (for inspection).
    pub fn agent(&self) -> &StreamAgent {
        &self.state.agent
    }

    /// Frames processed so far.
    pub fn frames_processed(&self) -> usize {
        self.state.processed
    }

    /// Total frames in the stream's scenario.
    pub fn total_frames(&self) -> usize {
        self.state.total_frames
    }

    /// Resilience counters (all zero on a healthy run).
    pub fn resilience(&self) -> ResilienceCounters {
        self.state.resilience
    }

    /// Whether the stream was detached before draining its scenario.
    pub fn is_detached(&self) -> bool {
        self.state.detached
    }

    /// Whether the stream has no pending frame (drained or detached). Idle
    /// streams cost nothing per step and hold no admission slot.
    pub fn is_idle(&self) -> bool {
        self.state.next_frame.is_none()
    }

    /// Virtual time at which the stream's last processed frame completed,
    /// seconds (0 before the first frame).
    pub fn clock_s(&self) -> f64 {
        self.state.clock_s
    }
}

/// Fleet-level configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FleetConfig {
    /// Admission-policy knob in `[0, 1]`.
    ///
    /// `1.0` (the default) admits the stream that has processed the fewest
    /// frames — strict round-robin fairness. `0.0` admits the stream whose
    /// target accelerator frees up first — throughput-first, which can
    /// starve streams pinned to congested engines until the others drain.
    /// Intermediate values blend the two rankings.
    pub fairness: f64,
}

impl FleetConfig {
    /// The default fleet configuration: strict round-robin admission.
    pub fn round_robin() -> Self {
        Self { fairness: 1.0 }
    }

    /// Returns a copy with a different fairness knob (clamped to `[0, 1]`).
    pub fn with_fairness(mut self, fairness: f64) -> Self {
        self.fairness = fairness.clamp(0.0, 1.0);
        self
    }
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self::round_robin()
    }
}

/// One processed frame of one stream, with its fleet-level timing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetFrameOutcome {
    /// Index of the stream within the fleet.
    pub stream: usize,
    /// Virtual time at which the stream submitted the frame, seconds.
    pub submit_time_s: f64,
    /// Cross-stream queueing delay charged to the frame, seconds (also
    /// included in `outcome.latency_s`).
    pub queue_wait_s: f64,
    /// Virtual time at which the frame completed, seconds.
    pub completion_time_s: f64,
    /// The per-frame outcome, identical in shape to the single-stream
    /// runtime's. Its `latency_s` includes the queueing delay.
    pub outcome: FrameOutcome,
}

/// What happened when the fleet tried to make one candidate pair resident.
enum CandidateOutcome {
    /// The pair is resident; execution can proceed with this load charge.
    Acquired((CandidatePair, LoadCharge)),
    /// The pool cannot take the pair without evicting a protected model.
    MemoryBlocked,
    /// The pair is unusable right now (incompatible or offline) — try the
    /// next candidate.
    Skipped,
}

/// Everything the admission phase decides about one frame, carried between
/// the lifecycle phases (and, in event-driven mode, inside the event queue)
/// so that both execution modes run the exact same state transitions.
#[derive(Debug, Clone)]
struct AdmittedFrame {
    /// Whether a scripted fault window was active at admission.
    fault_active: bool,
    /// The (possibly re-planned) scheduling decision.
    decision: Decision,
    /// The stream's incumbent pair before this frame.
    old: CandidatePair,
    /// The pair actually acquired (the decision, or a degrade fallback).
    pair: CandidatePair,
    /// Load cost charged while acquiring the pair.
    charge: LoadCharge,
}

/// Payloads of the events the event-driven fleet loop schedules.
#[derive(Debug, Clone)]
enum FleetEvent {
    /// A scripted fault/recovery edge is due; fires `FaultInjector::advance`.
    FaultEdge,
    /// A stream's next frame enters the system.
    FrameArrival { frame: Box<Frame> },
    /// The frame's pair is resident; inference can run.
    LoadComplete {
        frame: Box<Frame>,
        admitted: AdmittedFrame,
    },
    /// Inference finished; the outcome commits.
    InferenceComplete {
        frame: Box<Frame>,
        admitted: AdmittedFrame,
        report: InferenceReport,
    },
}

/// Per-stream runtime state inside the fleet.
#[derive(Debug, Clone)]
struct StreamState {
    name: String,
    agent: StreamAgent,
    stream: FrameStream,
    next_frame: Option<Box<Frame>>,
    /// Virtual time at which the stream's next frame is submitted (the
    /// completion time of its previous frame).
    clock_s: f64,
    processed: usize,
    total_frames: usize,
    resilience: ResilienceCounters,
    /// Whether the stream was detached (its slot is retained for handle
    /// stability, but it never re-enters admission).
    detached: bool,
}

/// Drives N concurrent SHIFT streams against a single shared
/// [`ExecutionEngine`].
///
/// ```
/// use shift_core::prelude::*;
/// use shift_core::fleet::{FleetConfig, FleetRuntime, StreamSpec};
/// use shift_models::{ModelZoo, ResponseModel};
/// use shift_soc::{ExecutionEngine, Platform};
/// use shift_video::{CharacterizationDataset, Scenario};
///
/// let engine = ExecutionEngine::new(
///     Platform::xavier_nx_with_oak(),
///     ModelZoo::standard(),
///     ResponseModel::new(5),
/// );
/// let characterization = characterize(&engine, &CharacterizationDataset::generate(120, 5));
/// let specs = vec![
///     StreamSpec::new("a", Scenario::scenario_3().with_num_frames(10), ShiftConfig::paper_defaults()),
///     StreamSpec::new("b", Scenario::scenario_2().with_num_frames(10), ShiftConfig::paper_defaults()),
/// ];
/// let mut fleet = FleetRuntime::new(engine, &characterization, FleetConfig::round_robin(), specs)?;
/// let outcomes = fleet.run_to_completion()?;
/// assert_eq!(outcomes.len(), 20);
/// # Ok::<(), shift_core::ShiftError>(())
/// ```
#[derive(Debug, Clone)]
pub struct FleetRuntime {
    engine: ExecutionEngine,
    loader: DynamicModelLoader,
    occupancy: OccupancyTracker,
    arbiter: MemoryArbiter,
    streams: Vec<StreamState>,
    config: FleetConfig,
    /// Optional scripted fault injector. In lockstep mode it is advanced
    /// once per fleet step; in event-driven mode its plan's edges are
    /// pre-scheduled as [`EventKind::FaultEdge`] events.
    injector: Option<FaultInjector>,
    /// Frames admitted so far: the fleet-wide discrete clock faults are
    /// keyed on, and the `time` axis of every scheduled event.
    steps: u64,
    /// Which inner loop drives the fleet (event-driven by default).
    mode: ExecutionMode,
    /// Pending events of the event-driven loop.
    events: EventQueue<FleetEvent>,
    /// Streams with a frame pending, ascending — the event-driven loop's
    /// admission set. Kept in lockstep with `next_frame.is_some()` so
    /// drained or idle streams cost nothing per step (O(active)).
    ready: Vec<usize>,
    /// Per-stream scheduling examinations performed by admission so far —
    /// the step-count hook the O(active) regression test asserts on.
    stream_polls: u64,
    /// Optional event trace (enabled via [`FleetRuntime::enable_event_trace`]).
    trace: Option<Vec<TraceEvent>>,
}

impl FleetRuntime {
    /// Builds a fleet from a shared engine, a shared offline characterization
    /// and one [`StreamSpec`] per stream.
    ///
    /// Each stream's initial pair is pre-loaded (its cost charged to the
    /// stream's first frame); streams whose initial pair is already resident
    /// — because an earlier stream loaded it — pay nothing, the first
    /// instance of cross-stream model reuse.
    ///
    /// # Errors
    ///
    /// Returns [`ShiftError::EmptyFleet`] for an empty spec list, plus the
    /// per-stream construction errors of
    /// [`ShiftRuntime::new`](crate::runtime::ShiftRuntime::new).
    pub fn new(
        engine: ExecutionEngine,
        characterization: &Characterization,
        config: FleetConfig,
        specs: Vec<StreamSpec>,
    ) -> Result<Self, ShiftError> {
        if specs.is_empty() {
            return Err(ShiftError::EmptyFleet);
        }
        let mut fleet = Self::empty(engine, config);
        for spec in specs {
            fleet.attach_stream(characterization, spec)?;
        }
        fleet.prime_des();
        Ok(fleet)
    }

    /// A fleet with no streams yet — the starting point of the dynamic
    /// session path ([`FleetService`](crate::service::FleetService)), where
    /// streams join via [`FleetRuntime::attach_stream`] instead of at
    /// construction. The batch constructor [`FleetRuntime::new`] keeps
    /// rejecting empty spec lists.
    pub fn empty(engine: ExecutionEngine, config: FleetConfig) -> Self {
        Self {
            engine,
            loader: DynamicModelLoader::new(),
            occupancy: OccupancyTracker::new(),
            arbiter: MemoryArbiter::new(),
            streams: Vec::new(),
            config,
            injector: None,
            steps: 0,
            mode: ExecutionMode::default(),
            events: EventQueue::new(),
            ready: Vec::new(),
            stream_polls: 0,
            trace: None,
        }
    }

    /// Attaches one stream to the fleet, at construction or mid-run, and
    /// returns its handle.
    ///
    /// The stream's initial pair is pre-loaded with pin protection: it never
    /// steals another stream's pinned model, and if the pool cannot take the
    /// pair alongside the pinned residents the load is deferred to the first
    /// frame's degrade path. A stream attached mid-run enters the virtual
    /// timeline at the fleet's current makespan (0 at construction), so it
    /// cannot retroactively contend with work that already completed.
    ///
    /// # Errors
    ///
    /// The per-stream construction errors of
    /// [`ShiftRuntime::new`](crate::runtime::ShiftRuntime::new), plus
    /// unrecoverable loader failures.
    pub fn attach_stream(
        &mut self,
        characterization: &Characterization,
        spec: StreamSpec,
    ) -> Result<StreamHandle, ShiftError> {
        let mut agent = StreamAgent::new(characterization, spec.config)?;
        let initial = agent.current_pair();
        let protected = self.arbiter.pinned_models(initial.accelerator);
        match self
            .loader
            .ensure_loaded_protected(&mut self.engine, initial, &protected)
        {
            Ok(outcome) => {
                agent.charge_pending_load(outcome.load_time_s, outcome.load_energy_j);
            }
            Err(SocError::OutOfMemory { .. }) => {}
            Err(other) => return Err(other.into()),
        }
        self.arbiter.pin(initial.model, initial.accelerator);
        let mut stream = spec.scenario.stream();
        // A resumed stream (live migration) starts mid-scenario: discard the
        // frames its previous incarnation already played.
        for _ in 0..spec.start_frame {
            if stream.next().is_none() {
                break;
            }
        }
        let next_frame = stream.next().map(Box::new);
        let total_frames = spec.scenario.num_frames().saturating_sub(spec.start_frame);
        let clock_s = self.makespan_s();
        let index = self.streams.len();
        let has_frame = next_frame.is_some();
        self.streams.push(StreamState {
            name: spec.name,
            agent,
            stream,
            next_frame,
            clock_s,
            processed: 0,
            total_frames,
            resilience: ResilienceCounters::default(),
            detached: false,
        });
        if has_frame {
            self.insert_ready(index);
        }
        Ok(StreamHandle(index))
    }

    /// Charges an out-of-band cost (e.g. a live-migration transfer plus the
    /// model re-warm on the destination node) to the stream behind `handle`.
    /// The cost lands on the stream's next processed frame exactly like a
    /// loader miss: it extends that frame's latency by `time_s` and its
    /// energy by `energy_j`.
    ///
    /// # Panics
    ///
    /// Panics when the handle does not belong to this fleet.
    pub(crate) fn charge_stream_load(&mut self, handle: StreamHandle, time_s: f64, energy_j: f64) {
        self.streams[handle.0]
            .agent
            .charge_pending_load(time_s, energy_j);
    }

    /// Detaches the stream behind `handle`: its pinned pair is released, its
    /// remaining frames are dropped, and it leaves the admission (ready)
    /// set. The slot is retained — the handle stays valid for inspecting the
    /// stream's history — and detaching an already-detached stream is a
    /// no-op. Idle slots cost nothing per step.
    ///
    /// # Panics
    ///
    /// Panics when the handle does not belong to this fleet.
    pub fn detach_stream(&mut self, handle: StreamHandle) {
        let index = handle.0;
        let state = &mut self.streams[index];
        if state.detached {
            return;
        }
        state.detached = true;
        state.next_frame = None;
        let pair = state.agent.current_pair();
        self.arbiter.unpin(pair.model, pair.accelerator);
        if let Ok(slot) = self.ready.binary_search(&index) {
            self.ready.remove(slot);
        }
    }

    /// Attaches a scripted fault plan: the injector is advanced once per
    /// fleet step (keyed on the count of frames admitted so far) and applies
    /// every fault through the shared engine's degradation surfaces. A
    /// zero-fault plan leaves every outcome bit-identical to a run without
    /// one.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.injector = Some(FaultInjector::new(plan));
        self.prime_des();
        self
    }

    /// Selects the fleet's inner loop ([`ExecutionMode::EventDriven`] is the
    /// default). Both modes produce bit-identical outcomes — the lockstep
    /// loop is retained as the differential-testing oracle.
    pub fn with_execution_mode(mut self, mode: ExecutionMode) -> Self {
        self.mode = mode;
        self.prime_des();
        self
    }

    /// The inner loop currently driving the fleet.
    pub fn execution_mode(&self) -> ExecutionMode {
        self.mode
    }

    /// Per-stream scheduling examinations performed by admission so far.
    ///
    /// Every step, the lockstep loop examines all N streams (to find the
    /// pending ones and rank them); the event-driven loop examines only the
    /// ready set. The counter makes that O(N) vs O(active) difference
    /// observable to tests without timing anything.
    pub fn stream_polls(&self) -> u64 {
        self.stream_polls
    }

    /// Starts recording an event trace ([`TraceEvent`] per lifecycle event;
    /// both modes record frame events identically). Retrieval via
    /// [`FleetRuntime::take_event_trace`].
    pub fn enable_event_trace(&mut self) {
        if self.trace.is_none() {
            self.trace = Some(Vec::new());
        }
    }

    /// Takes the recorded event trace, leaving recording enabled.
    pub fn take_event_trace(&mut self) -> Vec<TraceEvent> {
        match self.trace.as_mut() {
            Some(trace) => std::mem::take(trace),
            None => Vec::new(),
        }
    }

    /// The fault injector, when a plan is attached.
    pub fn fault_injector(&self) -> Option<&FaultInjector> {
        self.injector.as_ref()
    }

    /// Read-only view of the stream behind `handle`.
    ///
    /// # Panics
    ///
    /// Panics when the handle does not belong to this fleet.
    pub fn stream(&self, handle: StreamHandle) -> StreamView<'_> {
        StreamView {
            state: &self.streams[handle.0],
        }
    }

    /// Handles of every stream slot ever attached, in attach order
    /// (detached slots included — their views retain the stream's history).
    pub fn handles(&self) -> Vec<StreamHandle> {
        (0..self.streams.len()).map(StreamHandle).collect()
    }

    /// Number of streams still attached (not detached; drained streams
    /// count until they detach).
    pub fn attached_count(&self) -> usize {
        self.streams.iter().filter(|s| !s.detached).count()
    }

    /// Frames admitted so far — the fleet's discrete clock, the `time` axis
    /// every scheduled event (fault edges, session attach/detach) is keyed
    /// on.
    pub fn ticks(&self) -> u64 {
        self.steps
    }

    /// Advances the discrete clock to `tick` without admitting any frames.
    /// Used by the service loop to fast-forward an idle fleet to its next
    /// scheduled session event; a tick at or behind the current clock is a
    /// no-op.
    pub(crate) fn advance_ticks_to(&mut self, tick: u64) {
        self.steps = self.steps.max(tick);
    }

    /// Number of stream slots in the fleet (attached or detached).
    pub fn stream_count(&self) -> usize {
        self.streams.len()
    }

    /// The shared execution engine (for inspecting telemetry).
    pub fn engine(&self) -> &ExecutionEngine {
        &self.engine
    }

    /// The shared occupancy tracker.
    pub fn occupancy(&self) -> &OccupancyTracker {
        &self.occupancy
    }

    /// The shared memory arbiter.
    pub fn arbiter(&self) -> &MemoryArbiter {
        &self.arbiter
    }

    /// Total frames across all streams (processed + remaining).
    pub fn total_frames(&self) -> usize {
        self.streams.iter().map(|s| s.total_frames).sum()
    }

    /// Whether every stream has drained its scenario.
    pub fn is_done(&self) -> bool {
        self.streams.iter().all(|s| s.next_frame.is_none())
    }

    /// Virtual completion time of the last frame processed so far (the
    /// fleet's makespan), seconds.
    pub fn makespan_s(&self) -> f64 {
        self.streams.iter().map(|s| s.clock_s).fold(0.0, f64::max)
    }

    /// Admits and processes one frame from one stream. Returns `Ok(None)`
    /// when every stream has finished.
    ///
    /// # Errors
    ///
    /// Propagates unrecoverable loading and execution errors; memory
    /// pressure and per-pair incompatibilities are handled by degrading to
    /// the next-best candidate, not reported as errors.
    pub fn step(&mut self) -> Result<Option<FleetFrameOutcome>, ShiftError> {
        match self.mode {
            ExecutionMode::Lockstep => self.step_lockstep(),
            ExecutionMode::EventDriven => self.step_event_driven(),
        }
    }

    /// The original inner loop: poll the injector, scan every stream.
    fn step_lockstep(&mut self) -> Result<Option<FleetFrameOutcome>, ShiftError> {
        // Scripted platform faults land at the step boundary, before
        // admission, so every stream observes the same platform state a
        // sequential replay would. Re-running a failed step re-advances to
        // the same frame, which is idempotent.
        if let Some(injector) = self.injector.as_mut() {
            injector.advance(self.steps, &mut self.engine);
        }
        let candidates: Vec<usize> = (0..self.streams.len())
            .filter(|&i| self.streams[i].next_frame.is_some())
            .collect();
        // The drained-stream scan above is admission work too; the ranking
        // pass inside `select_stream` counts the candidates themselves.
        self.stream_polls += (self.streams.len() - candidates.len()) as u64;
        let Some(index) = self.select_stream(&candidates) else {
            return Ok(None);
        };
        let frame = self.streams[index]
            .next_frame
            .take()
            .expect("admission only selects streams with a pending frame");
        // On error the frame is put back, so the stream is not silently
        // drained and a caller that handles the error can keep stepping.
        let outcome = match self.process_stream_frame(index, &frame) {
            Ok(outcome) => outcome,
            Err(err) => {
                self.streams[index].next_frame = Some(frame);
                return Err(err);
            }
        };
        self.finish_step(index);
        Ok(Some(outcome))
    }

    /// The discrete-event inner loop. One step = fire the due fault edges,
    /// admit one frame from the ready set, and run its lifecycle events
    /// (arrival → load-complete → inference-complete) off the queue.
    ///
    /// Events are keyed on the discrete admission tick, not on virtual
    /// seconds: admission order is decided by the fairness policy over live
    /// occupancy/lag state, so replaying the lockstep tick order — with the
    /// documented `(time, rank, stream, seq)` tie-break — is precisely what
    /// keeps the two modes bit-identical (the differential harness enforces
    /// this). The payoff is the ready set: drained streams leave it, so a
    /// step costs O(active streams + due events), not O(N).
    fn step_event_driven(&mut self) -> Result<Option<FleetFrameOutcome>, ShiftError> {
        let tick = self.steps;
        // Fault edges scheduled at or before this tick fire first — the same
        // boundary the lockstep loop advances the injector on. This happens
        // even when the fleet is drained, matching lockstep's final
        // advance-then-return-None step.
        self.fire_due_fault_edges(tick);
        // Only the ready set is examined (`select_stream` counts it into
        // `stream_polls`); drained and idle streams cost nothing here.
        let ready = std::mem::take(&mut self.ready);
        let picked = self.select_stream(&ready);
        self.ready = ready;
        let Some(index) = picked else {
            return Ok(None);
        };
        let slot = self
            .ready
            .binary_search(&index)
            .expect("admission picks from the ready set");
        self.ready.remove(slot);
        let frame = self.streams[index]
            .next_frame
            .take()
            .expect("ready streams have a pending frame");
        self.events.schedule(
            tick,
            EventKind::FrameArrival,
            index as u32,
            FleetEvent::FrameArrival { frame },
        );
        while let Some(event) = self.events.pop() {
            debug_assert!(event.key.time <= tick, "frame lifecycle stays on its tick");
            match event.payload {
                FleetEvent::FaultEdge => self.advance_injector(tick),
                FleetEvent::FrameArrival { frame } => match self.admit_frame(index, &frame) {
                    Ok(admitted) => {
                        self.events.schedule(
                            tick,
                            EventKind::LoadComplete,
                            index as u32,
                            FleetEvent::LoadComplete { frame, admitted },
                        );
                    }
                    Err(err) => {
                        self.requeue_frame(index, frame);
                        return Err(err);
                    }
                },
                FleetEvent::LoadComplete { frame, admitted } => {
                    match self.run_frame_inference(&admitted, &frame) {
                        Ok(report) => {
                            self.events.schedule(
                                tick,
                                EventKind::InferenceComplete,
                                index as u32,
                                FleetEvent::InferenceComplete {
                                    frame,
                                    admitted,
                                    report,
                                },
                            );
                        }
                        Err(err) => {
                            self.requeue_frame(index, frame);
                            return Err(err);
                        }
                    }
                }
                FleetEvent::InferenceComplete {
                    frame,
                    admitted,
                    report,
                } => {
                    let outcome = self.complete_frame(index, admitted, &frame, &report);
                    self.finish_step(index);
                    if self.streams[index].next_frame.is_some() {
                        self.insert_ready(index);
                    }
                    return Ok(Some(outcome));
                }
            }
        }
        unreachable!("the admitted frame's lifecycle always completes or errors")
    }

    /// Commits the bookkeeping shared by both loops after a successful
    /// frame: advance the stream and the fleet clock.
    fn finish_step(&mut self, index: usize) {
        let state = &mut self.streams[index];
        state.processed += 1;
        state.next_frame = state.stream.next().map(Box::new);
        self.steps += 1;
    }

    /// Restores an errored frame so the caller can retry the step
    /// (event-driven path; the stream re-enters the ready set).
    fn requeue_frame(&mut self, index: usize, frame: Box<Frame>) {
        self.streams[index].next_frame = Some(frame);
        self.insert_ready(index);
    }

    /// Inserts `index` into the sorted ready set (idempotent).
    fn insert_ready(&mut self, index: usize) {
        if let Err(slot) = self.ready.binary_search(&index) {
            self.ready.insert(slot, index);
        }
    }

    /// (Re)builds the event-driven loop's state: the ready set from the
    /// streams with a pending frame, and one scheduled [`EventKind::FaultEdge`]
    /// per distinct edge frame of the attached fault plan. Safe to call
    /// between steps at any point — `FaultInjector::advance` is idempotent,
    /// so edges that already fired re-fire as no-ops.
    fn prime_des(&mut self) {
        self.events.clear();
        self.ready = (0..self.streams.len())
            .filter(|&i| self.streams[i].next_frame.is_some())
            .collect();
        if let Some(injector) = &self.injector {
            for frame in injector.plan().edge_frames() {
                self.events
                    .schedule(frame, EventKind::FaultEdge, 0, FleetEvent::FaultEdge);
            }
        }
    }

    /// Pops and fires every fault edge due at or before `tick`.
    fn fire_due_fault_edges(&mut self, tick: u64) {
        while self
            .events
            .peek()
            .is_some_and(|key| key.time <= tick && key.rank == EventKind::FaultEdge.rank())
        {
            let _ = self.events.pop();
            self.advance_injector(tick);
        }
    }

    /// Advances the injector to `tick` (a no-op between scripted edges).
    fn advance_injector(&mut self, tick: u64) {
        if let Some(injector) = self.injector.as_mut() {
            injector.advance(tick, &mut self.engine);
        }
    }

    /// Runs every stream to completion, returning the outcomes in admission
    /// order.
    ///
    /// # Errors
    ///
    /// Propagates the first unrecoverable error.
    pub fn run_to_completion(&mut self) -> Result<Vec<FleetFrameOutcome>, ShiftError> {
        let mut outcomes = Vec::with_capacity(self.total_frames());
        while let Some(outcome) = self.step()? {
            outcomes.push(outcome);
        }
        Ok(outcomes)
    }

    /// Selects the stream to admit next from `candidates` (stream indices,
    /// ascending, each with a pending frame): the argmin of
    /// `fairness * lag + (1 - fairness) * wait`, where `lag` ranks streams
    /// by frames processed (fewest first) and `wait` ranks them by the
    /// queueing delay their current accelerator would charge, both
    /// normalized to `[0, 1]` over the candidate set. Ties break on the
    /// lowest stream index, keeping admission fully deterministic. Both
    /// execution modes rank through this one function — the lockstep loop
    /// passes the full pending scan, the event-driven loop its ready set —
    /// so admission order cannot diverge between them.
    fn select_stream(&mut self, candidates: &[usize]) -> Option<usize> {
        self.stream_polls += candidates.len() as u64;
        if candidates.is_empty() {
            return None;
        }
        let processed: Vec<f64> = candidates
            .iter()
            .map(|&i| self.streams[i].processed as f64)
            .collect();
        let waits: Vec<f64> = candidates
            .iter()
            .map(|&i| {
                let state = &self.streams[i];
                let pair = state.agent.current_pair();
                self.occupancy.queue_delay(pair.accelerator, state.clock_s)
            })
            .collect();
        let normalize = |values: &[f64]| -> Vec<f64> {
            let min = values.iter().copied().fold(f64::INFINITY, f64::min);
            let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let span = max - min;
            values
                .iter()
                .map(|v| {
                    if span <= f64::EPSILON {
                        0.0
                    } else {
                        (v - min) / span
                    }
                })
                .collect()
        };
        let lag = normalize(&processed);
        let wait = normalize(&waits);
        // The field is `pub`, so a struct-literal construction can bypass
        // `with_fairness`'s clamp; clamp again at the point of use.
        let fairness = self.config.fairness.clamp(0.0, 1.0);
        let mut best: Option<(f64, usize)> = None;
        for (slot, &index) in candidates.iter().enumerate() {
            let key = fairness * lag[slot] + (1.0 - fairness) * wait[slot];
            if best.is_none_or(|(k, _)| key < k) {
                best = Some((key, index));
            }
        }
        best.map(|(_, index)| index)
    }

    /// Processes `frame` on stream `index` against the shared engine — the
    /// lockstep composition of the three lifecycle phases. The event-driven
    /// loop runs the *same* phases, routed through the event queue, which is
    /// what makes the two modes bit-identical by construction.
    fn process_stream_frame(
        &mut self,
        index: usize,
        frame: &Frame,
    ) -> Result<FleetFrameOutcome, ShiftError> {
        let admitted = self.admit_frame(index, frame)?;
        let report = self.run_frame_inference(&admitted, frame)?;
        Ok(self.complete_frame(index, admitted, frame, &report))
    }

    /// Lifecycle phase 1 — admission: decide (re-planning around dropped
    /// accelerators) and make a pair resident, without mutating pins or
    /// per-stream counters (so an error leaves the fleet retryable).
    fn admit_frame(&mut self, index: usize, frame: &Frame) -> Result<AdmittedFrame, ShiftError> {
        let fault_active = self.injector.as_ref().is_some_and(|i| i.is_fault_active());
        let mut decision = self.streams[index].agent.decide(frame);
        if !self.engine.is_online(decision.pair.accelerator) && decision.scores.is_empty() {
            // The similarity gate kept a pair whose accelerator dropped out:
            // run the full Algorithm 1 pass so the degrade path below has a
            // complete score ranking to walk. A natural re-schedule that
            // picked the offline pair already carries its scores, and
            // re-running the pass would double-push the same predictions
            // into the momentum buffers. The counter only attributes the
            // re-plan to the fault subsystem when the kept pair's own
            // accelerator is fault-dropped (a thermal trip triggers the same
            // survival path but is not injected-fault exposure, even while
            // an unrelated fault window is active).
            let dropped = fault_active
                && self
                    .engine
                    .is_administratively_offline(decision.pair.accelerator);
            decision = self.streams[index].agent.replan(&decision);
            if dropped {
                self.streams[index].resilience.fault_replans += 1;
            }
        }
        let old = self.streams[index].agent.current_pair();
        let (pair, charge) = self.acquire_pair(&decision, old)?;
        Ok(AdmittedFrame {
            fault_active,
            decision,
            old,
            pair,
            charge,
        })
    }

    /// Lifecycle phase 2 — inference on the shared engine with the admitted
    /// pair.
    fn run_frame_inference(
        &mut self,
        admitted: &AdmittedFrame,
        frame: &Frame,
    ) -> Result<InferenceReport, ShiftError> {
        Ok(self
            .engine
            .run_inference(admitted.pair.model, admitted.pair.accelerator, frame)?)
    }

    /// Lifecycle phase 3 — completion: commit the pin move, resilience
    /// counters, load charges, the occupancy reservation and the agent
    /// update. Nothing here can fail, so an error in the earlier phases
    /// leaves the arbiter refcounts and the stream's pending costs untouched
    /// for a retry.
    fn complete_frame(
        &mut self,
        index: usize,
        admitted: AdmittedFrame,
        frame: &Frame,
        report: &InferenceReport,
    ) -> FleetFrameOutcome {
        let AdmittedFrame {
            fault_active,
            decision,
            old,
            pair,
            charge,
        } = admitted;
        if pair != old {
            self.arbiter.unpin(old.model, old.accelerator);
            self.arbiter.pin(pair.model, pair.accelerator);
        }
        if fault_active {
            self.streams[index].resilience.fault_frames += 1;
            if pair != decision.pair
                && crate::runtime::fault_on_decided_pair(&self.engine, decision.pair)
            {
                self.streams[index].resilience.degraded_frames += 1;
            }
        }
        let (mut load_time, mut load_energy) = self.streams[index].agent.take_pending_load();
        load_time += charge.time_s;
        load_energy += charge.energy_j;
        let swapped = pair != old || charge.swapped;

        // --- Occupancy: the accelerator is busy for the load + inference;
        // any overlap with a peer's reservation is charged as queueing
        // delay. ---
        let submit = self.streams[index].clock_s;
        let reservation =
            self.occupancy
                .reserve(pair.accelerator, submit, load_time + report.latency_s);

        let load = LoadCharge {
            time_s: load_time,
            energy_j: load_energy,
            swapped,
        };
        let outcome = self.streams[index].agent.complete(
            frame,
            pair,
            &decision,
            report,
            load,
            reservation.wait_s,
        );
        let completion = submit + outcome.latency_s;
        self.streams[index].clock_s = completion;
        if let Some(trace) = self.trace.as_mut() {
            // The three virtual stamps reconstruct the latency accounting:
            // completion − arrival is the end-to-end latency, completion −
            // load-complete is exactly the inference kernel's latency.
            let tick = self.steps;
            trace.push(TraceEvent {
                tick,
                kind: EventKind::FrameArrival,
                stream: index,
                at_s: submit,
            });
            trace.push(TraceEvent {
                tick,
                kind: EventKind::LoadComplete,
                stream: index,
                at_s: completion - report.latency_s,
            });
            trace.push(TraceEvent {
                tick,
                kind: EventKind::InferenceComplete,
                stream: index,
                at_s: completion,
            });
        }
        FleetFrameOutcome {
            stream: index,
            submit_time_s: submit,
            queue_wait_s: reservation.wait_s,
            completion_time_s: completion,
            outcome,
        }
    }

    /// The models on `accelerator` this stream must not evict: everything
    /// pinned by a peer. The stream's own pin of its incumbent pair does not
    /// protect it from itself (migrating away releases it), unless a peer
    /// holds a pin on the same pair too.
    fn protected_for(
        &self,
        accelerator: shift_soc::AcceleratorId,
        old: CandidatePair,
    ) -> Vec<shift_models::ModelId> {
        let mut protected = self.arbiter.pinned_models(accelerator);
        if old.accelerator == accelerator && self.arbiter.pin_count(old.model, accelerator) == 1 {
            protected.retain(|&model| model != old.model);
        }
        protected
    }

    /// Makes the decided pair (or, under memory pressure, the best loadable
    /// fallback) resident. Candidates are tried in score order, then the
    /// incumbent pair; as a last resort the best candidate that was blocked
    /// *only by peer pins* is loaded without pin protection, so the stream
    /// degrades a peer rather than stalling forever. Pins are not modified
    /// here — the caller commits the pin move after the frame succeeds.
    fn acquire_pair(
        &mut self,
        decision: &Decision,
        old: CandidatePair,
    ) -> Result<(CandidatePair, LoadCharge), ShiftError> {
        // Fast path: the decided pair loads (or is already resident). The
        // fallback candidate list is only built when this fails.
        let mut pin_blocked: Option<CandidatePair> = None;
        match self.try_candidate(decision.pair, old)? {
            CandidateOutcome::Acquired(result) => return Ok(result),
            CandidateOutcome::MemoryBlocked => pin_blocked = Some(decision.pair),
            CandidateOutcome::Skipped => {}
        }

        // Slow path: the remaining candidates in score order, then the
        // incumbent pair.
        for pair in decision.fallback_candidates(old) {
            match self.try_candidate(pair, old)? {
                CandidateOutcome::Acquired(result) => return Ok(result),
                CandidateOutcome::MemoryBlocked => {
                    pin_blocked.get_or_insert(pair);
                }
                CandidateOutcome::Skipped => {}
            }
        }
        // Every candidate is blocked: evict a peer's model for the best
        // pin-blocked candidate after all (it will reload on that stream's
        // next frame) rather than deadlock. If nothing was blocked by pins —
        // everything failed offline/incompatible — loading the decided pair
        // surfaces the real error.
        let pair = pin_blocked.unwrap_or(decision.pair);
        let outcome = self.loader.ensure_loaded(&mut self.engine, pair)?;
        Ok((
            pair,
            LoadCharge {
                time_s: outcome.load_time_s,
                energy_j: outcome.load_energy_j,
                swapped: outcome.loaded,
            },
        ))
    }

    /// Tries to make one candidate pair resident under pin protection.
    fn try_candidate(
        &mut self,
        pair: CandidatePair,
        old: CandidatePair,
    ) -> Result<CandidateOutcome, ShiftError> {
        // An offline accelerator is unusable even when the model is still
        // resident on it (the loader's already-resident fast path would
        // otherwise hand back a pair the engine then refuses to run).
        if !self.engine.is_online(pair.accelerator) {
            return Ok(CandidateOutcome::Skipped);
        }
        // A model that cannot fit the (possibly squeezed) pool even empty is
        // skipped without touching the pool: `ensure_loaded` would evict
        // every unprotected resident before failing, and no amount of
        // unpinning could help.
        if !crate::runtime::can_ever_fit(&self.engine, pair) {
            return Ok(CandidateOutcome::Skipped);
        }
        if pair == old && self.engine.is_loaded(pair.model, pair.accelerator) {
            self.loader.touch(pair);
            return Ok(CandidateOutcome::Acquired((pair, LoadCharge::default())));
        }
        let protected = self.protected_for(pair.accelerator, old);
        match self
            .loader
            .ensure_loaded_protected(&mut self.engine, pair, &protected)
        {
            Ok(outcome) => Ok(CandidateOutcome::Acquired((
                pair,
                LoadCharge {
                    time_s: outcome.load_time_s,
                    energy_j: outcome.load_energy_j,
                    swapped: outcome.loaded,
                },
            ))),
            Err(SocError::OutOfMemory { .. }) => Ok(CandidateOutcome::MemoryBlocked),
            Err(SocError::IncompatiblePair { .. } | SocError::AcceleratorOffline(_)) => {
                Ok(CandidateOutcome::Skipped)
            }
            Err(other) => Err(other.into()),
        }
    }
}

/// One builder for every runtime the crate offers — batch fleets, the
/// single-stream runtime and the long-running session service — replacing
/// the `FleetRuntime::new(...)` + `with_fault_plan` + `with_execution_mode`
/// call chains that used to be hand-assembled at every call site.
///
/// ```
/// use shift_core::prelude::*;
/// use shift_core::fleet::{FleetBuilder, StreamSpec};
/// use shift_models::{ModelZoo, ResponseModel};
/// use shift_soc::{ExecutionEngine, Platform};
/// use shift_video::{CharacterizationDataset, Scenario};
///
/// let engine = ExecutionEngine::new(
///     Platform::xavier_nx_with_oak(),
///     ModelZoo::standard(),
///     ResponseModel::new(5),
/// );
/// let characterization = characterize(&engine, &CharacterizationDataset::generate(120, 5));
/// let mut fleet = FleetBuilder::new(engine, &characterization)
///     .stream(StreamSpec::new(
///         "a",
///         Scenario::scenario_3().with_num_frames(10),
///         ShiftConfig::paper_defaults(),
///     ))
///     .execution_mode(ExecutionMode::EventDriven)
///     .build()?;
/// assert_eq!(fleet.run_to_completion()?.len(), 10);
/// # Ok::<(), shift_core::ShiftError>(())
/// ```
#[derive(Debug, Clone)]
pub struct FleetBuilder<'a> {
    pub(crate) engine: ExecutionEngine,
    pub(crate) characterization: &'a Characterization,
    pub(crate) config: FleetConfig,
    pub(crate) specs: Vec<StreamSpec>,
    pub(crate) fault_plan: Option<FaultPlan>,
    pub(crate) mode: ExecutionMode,
}

impl<'a> FleetBuilder<'a> {
    /// Starts a builder over a shared engine and offline characterization.
    pub fn new(engine: ExecutionEngine, characterization: &'a Characterization) -> Self {
        Self {
            engine,
            characterization,
            config: FleetConfig::default(),
            specs: Vec::new(),
            fault_plan: None,
            mode: ExecutionMode::default(),
        }
    }

    /// Sets the fleet-level configuration (default: round-robin admission).
    pub fn config(mut self, config: FleetConfig) -> Self {
        self.config = config;
        self
    }

    /// Adds one stream spec.
    pub fn stream(mut self, spec: StreamSpec) -> Self {
        self.specs.push(spec);
        self
    }

    /// Adds a batch of stream specs.
    pub fn streams(mut self, specs: impl IntoIterator<Item = StreamSpec>) -> Self {
        self.specs.extend(specs);
        self
    }

    /// Attaches a scripted fault plan (see
    /// [`FleetRuntime::with_fault_plan`]).
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Selects the inner loop (see [`FleetRuntime::with_execution_mode`];
    /// event-driven is the default).
    pub fn execution_mode(mut self, mode: ExecutionMode) -> Self {
        self.mode = mode;
        self
    }

    /// Builds the batch fleet runtime.
    ///
    /// # Errors
    ///
    /// The errors of [`FleetRuntime::new`], including
    /// [`ShiftError::EmptyFleet`] when no streams were added (the dynamic
    /// path, [`FleetBuilder::build_service`], is the one that may start
    /// empty).
    pub fn build(self) -> Result<FleetRuntime, ShiftError> {
        let mut fleet =
            FleetRuntime::new(self.engine, self.characterization, self.config, self.specs)?;
        if let Some(plan) = self.fault_plan {
            fleet = fleet.with_fault_plan(plan);
        }
        Ok(fleet.with_execution_mode(self.mode))
    }

    /// Builds a single-stream [`ShiftRuntime`](crate::runtime::ShiftRuntime)
    /// sharing the builder's engine, characterization and fault plan — the
    /// chaos and hunt harnesses' path. Stream specs added to the builder are
    /// ignored: the single-stream runtime is driven frame-by-frame by its
    /// caller.
    ///
    /// # Errors
    ///
    /// The errors of [`ShiftRuntime::new`](crate::runtime::ShiftRuntime::new).
    pub fn build_solo(
        self,
        config: ShiftConfig,
    ) -> Result<crate::runtime::ShiftRuntime, ShiftError> {
        let runtime =
            crate::runtime::ShiftRuntime::new(self.engine, self.characterization, config)?;
        Ok(match self.fault_plan {
            Some(plan) => runtime.with_fault_plan(plan),
            None => runtime,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::characterize::{characterize, Characterization};
    use crate::runtime::ShiftRuntime;
    use shift_models::{ModelZoo, ResponseModel};
    use shift_soc::{AcceleratorId, Platform};
    use shift_video::CharacterizationDataset;

    fn engine(seed: u64) -> ExecutionEngine {
        ExecutionEngine::new(
            Platform::xavier_nx_with_oak(),
            ModelZoo::standard(),
            ResponseModel::new(seed),
        )
    }

    fn characterization(seed: u64) -> Characterization {
        characterize(&engine(seed), &CharacterizationDataset::generate(160, seed))
    }

    #[test]
    fn a_fleet_of_one_matches_the_single_stream_runtime() {
        let characterization = characterization(11);
        let scenario = Scenario::scenario_2().with_num_frames(60);
        let config = ShiftConfig::paper_defaults();

        let mut shift = ShiftRuntime::new(engine(11), &characterization, config.clone()).unwrap();
        let single = shift.run(scenario.stream()).unwrap();

        let specs = vec![StreamSpec::new("only", scenario, config)];
        let mut fleet = FleetRuntime::new(
            engine(11),
            &characterization,
            FleetConfig::round_robin(),
            specs,
        )
        .unwrap();
        let fleet_outcomes = fleet.run_to_completion().unwrap();

        assert_eq!(fleet_outcomes.len(), single.len());
        for (fleet_frame, single_frame) in fleet_outcomes.iter().zip(single.iter()) {
            assert_eq!(fleet_frame.queue_wait_s, 0.0, "no self-contention");
            assert_eq!(&fleet_frame.outcome, single_frame);
        }
    }

    #[test]
    fn all_streams_run_to_completion() {
        let characterization = characterization(12);
        let specs = vec![
            StreamSpec::new(
                "hard",
                Scenario::scenario_1().with_num_frames(40),
                ShiftConfig::paper_defaults(),
            ),
            StreamSpec::new(
                "easy",
                Scenario::scenario_3().with_num_frames(25),
                ShiftConfig::paper_defaults().with_accuracy_goal(0.35),
            ),
            StreamSpec::new(
                "mid",
                Scenario::scenario_4().with_num_frames(30),
                ShiftConfig::paper_defaults(),
            ),
        ];
        let mut fleet = FleetRuntime::new(
            engine(12),
            &characterization,
            FleetConfig::round_robin(),
            specs,
        )
        .unwrap();
        let outcomes = fleet.run_to_completion().unwrap();
        assert_eq!(outcomes.len(), 95);
        assert!(fleet.is_done());
        let handles = fleet.handles();
        assert_eq!(fleet.stream(handles[0]).frames_processed(), 40);
        assert_eq!(fleet.stream(handles[1]).frames_processed(), 25);
        assert_eq!(fleet.stream(handles[2]).frames_processed(), 30);
        assert_eq!(fleet.stream(handles[1]).name(), "easy");
        assert_eq!(fleet.stream(handles[1]).goal(), 0.35);
        // Per-stream frame indices are contiguous.
        for stream in 0..3 {
            let indices: Vec<usize> = outcomes
                .iter()
                .filter(|o| o.stream == stream)
                .map(|o| o.outcome.frame_index)
                .collect();
            assert_eq!(indices, (0..indices.len()).collect::<Vec<_>>());
        }
    }

    #[test]
    fn round_robin_admission_never_lets_streams_drift_apart() {
        let characterization = characterization(13);
        let specs: Vec<StreamSpec> = (0..3)
            .map(|i| {
                StreamSpec::new(
                    format!("s{i}"),
                    Scenario::scenario_3().with_num_frames(20).with_seed(30 + i),
                    ShiftConfig::paper_defaults(),
                )
            })
            .collect();
        let mut fleet = FleetRuntime::new(
            engine(13),
            &characterization,
            FleetConfig::round_robin(),
            specs,
        )
        .unwrap();
        let mut processed = [0usize; 3];
        while let Some(outcome) = fleet.step().unwrap() {
            processed[outcome.stream] += 1;
            let max = *processed.iter().max().unwrap();
            let min = *processed.iter().min().unwrap();
            assert!(max - min <= 1, "fairness 1.0 must interleave strictly");
        }
    }

    #[test]
    fn contending_streams_pay_queueing_delay_on_a_shared_accelerator() {
        let characterization = characterization(14);
        let config =
            ShiftConfig::paper_defaults().with_allowed_accelerators(vec![AcceleratorId::Gpu]);
        let specs: Vec<StreamSpec> = (0..3)
            .map(|i| {
                StreamSpec::new(
                    format!("gpu-{i}"),
                    Scenario::scenario_1().with_num_frames(25).with_seed(50 + i),
                    config.clone(),
                )
            })
            .collect();
        let mut fleet = FleetRuntime::new(
            engine(14),
            &characterization,
            FleetConfig::round_robin(),
            specs,
        )
        .unwrap();
        let outcomes = fleet.run_to_completion().unwrap();
        let waited = outcomes.iter().filter(|o| o.queue_wait_s > 0.0).count();
        assert!(
            waited > 0,
            "three streams on one GPU must queue at least once"
        );
        for o in &outcomes {
            assert!(o.outcome.latency_s >= o.queue_wait_s);
            assert!((o.completion_time_s - o.submit_time_s - o.outcome.latency_s).abs() < 1e-9);
        }
    }

    #[test]
    fn cross_stream_model_reuse_spares_the_second_stream_the_initial_load() {
        let characterization = characterization(15);
        let config = ShiftConfig::paper_defaults();
        let specs: Vec<StreamSpec> = (0..2)
            .map(|i| {
                StreamSpec::new(
                    format!("twin-{i}"),
                    Scenario::scenario_3().with_num_frames(10).with_seed(70 + i),
                    config.clone(),
                )
            })
            .collect();
        let mut fleet = FleetRuntime::new(
            engine(15),
            &characterization,
            FleetConfig::round_robin(),
            specs,
        )
        .unwrap();
        let outcomes = fleet.run_to_completion().unwrap();
        let first_of = |stream: usize| {
            outcomes
                .iter()
                .find(|o| o.stream == stream && o.outcome.frame_index == 0)
                .unwrap()
        };
        // Stream 0 pays the initial load; stream 1 finds the model resident
        // and pays only inference energy (it may still queue behind stream 0
        // for the accelerator, so energy — not latency — is the signal).
        assert!(
            first_of(0).outcome.energy_j > 2.0 * first_of(1).outcome.energy_j,
            "the twin stream must reuse the resident model for free ({} J vs {} J)",
            first_of(0).outcome.energy_j,
            first_of(1).outcome.energy_j
        );
    }

    #[test]
    fn fleet_runs_are_deterministic() {
        let run = || {
            let characterization = characterization(16);
            let specs = vec![
                StreamSpec::new(
                    "a",
                    Scenario::scenario_2().with_num_frames(30),
                    ShiftConfig::paper_defaults(),
                ),
                StreamSpec::new(
                    "b",
                    Scenario::scenario_5().with_num_frames(30),
                    ShiftConfig::paper_defaults(),
                ),
            ];
            let mut fleet = FleetRuntime::new(
                engine(16),
                &characterization,
                FleetConfig::default().with_fairness(0.5),
                specs,
            )
            .unwrap();
            fleet.run_to_completion().unwrap()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn lockstep_and_event_driven_modes_are_bit_identical_under_faults() {
        let characterization = characterization(21);
        let run = |mode: ExecutionMode| {
            let specs = vec![
                StreamSpec::new(
                    "a",
                    Scenario::scenario_1().with_num_frames(30),
                    ShiftConfig::paper_defaults(),
                ),
                StreamSpec::new(
                    "b",
                    Scenario::scenario_4().with_num_frames(24),
                    ShiftConfig::paper_defaults(),
                ),
                StreamSpec::new(
                    "c",
                    Scenario::scenario_3().with_num_frames(18),
                    ShiftConfig::paper_defaults().with_accuracy_goal(0.4),
                ),
            ];
            let plan = shift_soc::FaultPlan::generate(9, &shift_soc::FaultSpec::mixed(72));
            let mut fleet = FleetRuntime::new(
                engine(21),
                &characterization,
                FleetConfig::default().with_fairness(0.6),
                specs,
            )
            .unwrap()
            .with_fault_plan(plan)
            .with_execution_mode(mode);
            assert_eq!(fleet.execution_mode(), mode);
            let outcomes = fleet.run_to_completion().unwrap();
            let resilience: Vec<ResilienceCounters> = fleet
                .handles()
                .into_iter()
                .map(|h| fleet.stream(h).resilience())
                .collect();
            (outcomes, resilience, fleet.makespan_s())
        };
        let lockstep = run(ExecutionMode::Lockstep);
        let event_driven = run(ExecutionMode::EventDriven);
        assert_eq!(lockstep, event_driven);
        assert_eq!(
            format!("{:?}", lockstep).into_bytes(),
            format!("{:?}", event_driven).into_bytes(),
            "byte-identical debug serialization"
        );
    }

    #[test]
    fn event_trace_stamps_reconstruct_the_latency_accounting() {
        let characterization = characterization(22);
        let specs = vec![
            StreamSpec::new(
                "x",
                Scenario::scenario_2().with_num_frames(12),
                ShiftConfig::paper_defaults(),
            ),
            StreamSpec::new(
                "y",
                Scenario::scenario_5().with_num_frames(12),
                ShiftConfig::paper_defaults(),
            ),
        ];
        let mut fleet = FleetRuntime::new(
            engine(22),
            &characterization,
            FleetConfig::round_robin(),
            specs,
        )
        .unwrap();
        fleet.enable_event_trace();
        let outcomes = fleet.run_to_completion().unwrap();
        let trace = fleet.take_event_trace();
        assert_eq!(trace.len(), 3 * outcomes.len(), "three events per frame");
        for (chunk, outcome) in trace.chunks(3).zip(outcomes.iter()) {
            let [arrival, load, inference] = chunk else {
                panic!()
            };
            assert_eq!(arrival.kind, EventKind::FrameArrival);
            assert_eq!(load.kind, EventKind::LoadComplete);
            assert_eq!(inference.kind, EventKind::InferenceComplete);
            assert!(arrival.tick == load.tick && load.tick == inference.tick);
            assert_eq!(arrival.stream, outcome.stream);
            assert_eq!(arrival.at_s, outcome.submit_time_s);
            assert_eq!(inference.at_s, outcome.completion_time_s);
            // completion − arrival is the end-to-end latency.
            assert!((inference.at_s - arrival.at_s - outcome.outcome.latency_s).abs() < 1e-9);
            assert!(arrival.at_s <= load.at_s && load.at_s <= inference.at_s);
        }
        assert!(fleet.take_event_trace().is_empty(), "take drains the trace");
    }

    #[test]
    fn event_driven_admission_work_is_o_active_not_o_streams() {
        let characterization = characterization(23);
        // 6 streams: four with long scenarios, two that drain after 2 frames.
        let specs: Vec<StreamSpec> = (0..6)
            .map(|i| {
                let frames = if i < 4 { 20 } else { 2 };
                StreamSpec::new(
                    format!("s{i}"),
                    Scenario::scenario_3()
                        .with_num_frames(frames)
                        .with_seed(90 + i),
                    ShiftConfig::paper_defaults(),
                )
            })
            .collect();
        let run = |mode: ExecutionMode| {
            let mut fleet = FleetRuntime::new(
                engine(23),
                &characterization,
                FleetConfig::round_robin(),
                specs.clone(),
            )
            .unwrap()
            .with_execution_mode(mode);
            // Drain the two short streams plus one round of the others.
            let short = [StreamHandle::from_index(4), StreamHandle::from_index(5)];
            while !fleet.is_done()
                && short
                    .iter()
                    .map(|&h| fleet.stream(h).frames_processed())
                    .sum::<usize>()
                    < 4
            {
                fleet.step().unwrap();
            }
            let before = fleet.stream_polls();
            fleet.step().unwrap();
            fleet.stream_polls() - before
        };
        // Once streams 4 and 5 are drained, a lockstep step still scans all
        // 6 streams; an event-driven step examines only the 4 active ones.
        assert_eq!(run(ExecutionMode::Lockstep), 6);
        assert_eq!(run(ExecutionMode::EventDriven), 4);
    }

    #[test]
    fn empty_fleet_is_rejected() {
        let characterization = characterization(17);
        let err = FleetRuntime::new(
            engine(17),
            &characterization,
            FleetConfig::round_robin(),
            Vec::new(),
        )
        .unwrap_err();
        assert_eq!(err, ShiftError::EmptyFleet);
    }

    #[test]
    fn fairness_knob_is_clamped_and_throughput_mode_still_finishes_everyone() {
        let config = FleetConfig::round_robin().with_fairness(-3.0);
        assert_eq!(config.fairness, 0.0);
        let characterization = characterization(18);
        let specs = vec![
            StreamSpec::new(
                "slow",
                Scenario::scenario_5().with_num_frames(20),
                ShiftConfig::paper_defaults(),
            ),
            StreamSpec::new(
                "fast",
                Scenario::scenario_3().with_num_frames(20),
                ShiftConfig::paper_defaults(),
            ),
        ];
        let mut fleet = FleetRuntime::new(engine(18), &characterization, config, specs).unwrap();
        let outcomes = fleet.run_to_completion().unwrap();
        assert_eq!(outcomes.len(), 40);
        for handle in fleet.handles() {
            assert_eq!(fleet.stream(handle).frames_processed(), 20);
        }
    }

    #[test]
    fn builder_matches_the_hand_assembled_chain() {
        let characterization = characterization(32);
        let specs = || {
            vec![
                StreamSpec::new(
                    "a",
                    Scenario::scenario_1().with_num_frames(20),
                    ShiftConfig::paper_defaults(),
                ),
                StreamSpec::new(
                    "b",
                    Scenario::scenario_3().with_num_frames(15),
                    ShiftConfig::paper_defaults().with_accuracy_goal(0.35),
                ),
            ]
        };
        let plan = shift_soc::FaultPlan::generate(4, &shift_soc::FaultSpec::mixed(35));
        let mut chained = FleetRuntime::new(
            engine(32),
            &characterization,
            FleetConfig::default().with_fairness(0.7),
            specs(),
        )
        .unwrap()
        .with_fault_plan(plan.clone())
        .with_execution_mode(ExecutionMode::Lockstep);
        let mut built = FleetBuilder::new(engine(32), &characterization)
            .config(FleetConfig::default().with_fairness(0.7))
            .streams(specs())
            .fault_plan(plan)
            .execution_mode(ExecutionMode::Lockstep)
            .build()
            .unwrap();
        assert_eq!(
            chained.run_to_completion().unwrap(),
            built.run_to_completion().unwrap()
        );
    }

    #[test]
    fn mid_run_attach_and_detach_keep_the_fleet_consistent() {
        let characterization = characterization(33);
        let mut fleet = FleetBuilder::new(engine(33), &characterization)
            .stream(StreamSpec::new(
                "base",
                Scenario::scenario_3().with_num_frames(12),
                ShiftConfig::paper_defaults(),
            ))
            .build()
            .unwrap();
        for _ in 0..4 {
            fleet.step().unwrap();
        }
        let late = fleet
            .attach_stream(
                &characterization,
                StreamSpec::new(
                    "late",
                    Scenario::scenario_2().with_num_frames(8).with_seed(99),
                    ShiftConfig::paper_defaults().with_accuracy_goal(0.3),
                ),
            )
            .unwrap();
        assert_eq!(fleet.stream_count(), 2);
        assert_eq!(fleet.attached_count(), 2);
        for _ in 0..6 {
            fleet.step().unwrap();
        }
        let late_frames = fleet.stream(late).frames_processed();
        assert!(late_frames > 0, "late stream must get admitted");
        fleet.detach_stream(late);
        assert!(fleet.stream(late).is_detached());
        assert_eq!(fleet.attached_count(), 1);
        // Detaching is idempotent and the remaining stream still drains.
        fleet.detach_stream(late);
        fleet.run_to_completion().unwrap();
        assert!(fleet.is_done());
        assert_eq!(
            fleet.stream(late).frames_processed(),
            late_frames,
            "a detached stream processes nothing further"
        );
        let base = fleet.handles()[0];
        assert_eq!(fleet.stream(base).frames_processed(), 12);
    }
}
