//! Offline model characterization (paper §III-A).
//!
//! The characterization pass runs every object-detection model over a
//! validation dataset and records, per frame, the confidence score and the
//! IoU against ground truth. The per-frame co-occurrences feed the confidence
//! graph; the aggregates become the [`ModelTraits`] consumed by the
//! scheduler; and the per-accelerator latency/energy statistics come from
//! probing the execution engine.
//!
//! As in the paper, this step "relies solely on a testing or validation
//! subset of the dataset used for training the models" — it never sees the
//! evaluation scenarios.

use crate::traits::{AcceleratorStats, ModelTraits};
use serde::{Deserialize, Serialize};
use shift_models::ModelId;
use shift_soc::ExecutionEngine;
use shift_video::CharacterizationDataset;
use std::collections::BTreeMap;

/// What one model reported on one validation frame.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ModelObservation {
    /// Reported confidence score (`0.0` when nothing was detected).
    pub confidence: f64,
    /// IoU of the reported box against the ground truth.
    pub iou: f64,
    /// Whether the model emitted a detection at all.
    pub detected: bool,
}

/// All models' observations on one validation frame.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SampleObservation {
    /// Index of the frame within the characterization dataset.
    pub frame_index: usize,
    /// Per-model observations.
    pub per_model: BTreeMap<ModelId, ModelObservation>,
}

/// The complete output of the offline characterization pass.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Characterization {
    /// Aggregated traits per model.
    pub traits: BTreeMap<ModelId, ModelTraits>,
    /// Per-frame observations (the confidence graph's training data).
    pub samples: Vec<SampleObservation>,
}

impl Characterization {
    /// Traits of `model`, if it was characterized.
    pub fn traits_of(&self, model: ModelId) -> Option<&ModelTraits> {
        self.traits.get(&model)
    }

    /// Models that were characterized, in a stable order.
    pub fn models(&self) -> Vec<ModelId> {
        self.traits.keys().copied().collect()
    }

    /// Number of validation samples used.
    pub fn sample_count(&self) -> usize {
        self.samples.len()
    }

    /// Whether the characterization is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty() || self.traits.is_empty()
    }
}

/// Runs the full offline characterization of the engine's model zoo on
/// `dataset`.
///
/// Detection accuracy and confidence are accelerator-independent (they are a
/// property of the network), so each model is probed once per frame; latency,
/// power and energy are characterized per accelerator from the engine's
/// execution model.
pub fn characterize(
    engine: &ExecutionEngine,
    dataset: &CharacterizationDataset,
) -> Characterization {
    let zoo = engine.zoo().clone();
    let accelerators = engine.platform().accelerator_ids();

    // Reference accelerator used for accuracy probing: any accelerator that
    // supports the model (first in platform order).
    let mut samples = Vec::with_capacity(dataset.len());
    let mut iou_sum: BTreeMap<ModelId, f64> = BTreeMap::new();
    let mut success_count: BTreeMap<ModelId, usize> = BTreeMap::new();
    let mut conf_sum: BTreeMap<ModelId, f64> = BTreeMap::new();
    let mut conf_count: BTreeMap<ModelId, usize> = BTreeMap::new();

    for (sample_index, frame) in dataset.iter().enumerate() {
        let mut per_model = BTreeMap::new();
        for spec in zoo.iter() {
            let Some(accelerator) = accelerators
                .iter()
                .copied()
                .find(|&a| spec.supports(a.target()))
            else {
                continue;
            };
            let report = engine
                .probe_inference(spec.id, accelerator, frame)
                .expect("pair validated as compatible");
            let iou = report.result.iou_against(frame.truth.as_ref());
            let confidence = report.result.confidence();
            let detected = report.result.detection.is_some();
            per_model.insert(
                spec.id,
                ModelObservation {
                    confidence,
                    iou,
                    detected,
                },
            );
            *iou_sum.entry(spec.id).or_insert(0.0) += iou;
            if iou >= 0.5 {
                *success_count.entry(spec.id).or_insert(0) += 1;
            }
            if detected {
                *conf_sum.entry(spec.id).or_insert(0.0) += confidence;
                *conf_count.entry(spec.id).or_insert(0) += 1;
            }
        }
        samples.push(SampleObservation {
            frame_index: sample_index,
            per_model,
        });
    }

    let n = dataset.len().max(1) as f64;
    let mut traits = BTreeMap::new();
    for spec in zoo.iter() {
        let mut per_accelerator = BTreeMap::new();
        let mut load_time_s = BTreeMap::new();
        let mut load_energy_j = BTreeMap::new();
        for &accelerator in &accelerators {
            if !spec.supports(accelerator.target()) {
                continue;
            }
            let perf = spec
                .perf_on(accelerator.target())
                .expect("support checked above");
            per_accelerator.insert(
                accelerator,
                AcceleratorStats::new(perf.latency_s, perf.power_w, perf.energy_j()),
            );
            load_time_s.insert(accelerator, spec.load.load_time_s(accelerator.target()));
            load_energy_j.insert(accelerator, spec.load.load_energy_j(accelerator.target()));
        }
        traits.insert(
            spec.id,
            ModelTraits {
                model: spec.id,
                mean_iou: iou_sum.get(&spec.id).copied().unwrap_or(0.0) / n,
                success_rate: success_count.get(&spec.id).copied().unwrap_or(0) as f64 / n,
                mean_confidence: conf_sum.get(&spec.id).copied().unwrap_or(0.0)
                    / conf_count.get(&spec.id).copied().unwrap_or(0).max(1) as f64,
                per_accelerator,
                memory_mb: spec.load.memory_mb,
                load_time_s,
                load_energy_j,
            },
        );
    }

    Characterization { traits, samples }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shift_models::{ModelZoo, ResponseModel};
    use shift_soc::{AcceleratorId, Platform};

    fn engine() -> ExecutionEngine {
        ExecutionEngine::new(
            Platform::xavier_nx_with_oak(),
            ModelZoo::standard(),
            ResponseModel::new(13),
        )
    }

    fn small_characterization() -> Characterization {
        characterize(&engine(), &CharacterizationDataset::generate(150, 5))
    }

    #[test]
    fn characterization_covers_all_models_and_samples() {
        let c = small_characterization();
        assert_eq!(c.models().len(), 8);
        assert_eq!(c.sample_count(), 150);
        assert!(!c.is_empty());
        for sample in &c.samples {
            assert_eq!(sample.per_model.len(), 8, "every model observed per frame");
        }
    }

    #[test]
    fn traits_track_reference_accuracy_ordering() {
        let c = small_characterization();
        let strong = c.traits_of(ModelId::YoloV7).unwrap().mean_iou;
        let weak = c.traits_of(ModelId::SsdMobilenetV2Small).unwrap().mean_iou;
        assert!(
            strong > weak + 0.1,
            "YoloV7 ({strong:.3}) should clearly beat MobilenetV2-320 ({weak:.3})"
        );
    }

    #[test]
    fn per_accelerator_stats_match_zoo_reference() {
        let c = small_characterization();
        let yolo = c.traits_of(ModelId::YoloV7).unwrap();
        let gpu = yolo.stats_on(AcceleratorId::Gpu).unwrap();
        assert!((gpu.mean_latency_s - 0.130).abs() < 1e-9);
        assert!((gpu.mean_energy_j - 1.968).abs() < 0.01);
        // Both DLA cores inherit the DLA-class reference numbers.
        let dla0 = yolo.stats_on(AcceleratorId::Dla0).unwrap();
        let dla1 = yolo.stats_on(AcceleratorId::Dla1).unwrap();
        assert_eq!(dla0.mean_latency_s, dla1.mean_latency_s);
    }

    #[test]
    fn unsupported_accelerators_are_absent_from_traits() {
        let c = small_characterization();
        let resnet = c.traits_of(ModelId::SsdResnet50).unwrap();
        assert!(resnet.stats_on(AcceleratorId::OakD).is_none());
        assert!(resnet.stats_on(AcceleratorId::Cpu).is_none());
        assert!(resnet.stats_on(AcceleratorId::Gpu).is_some());
    }

    #[test]
    fn success_rates_are_probabilities() {
        let c = small_characterization();
        for t in c.traits.values() {
            assert!((0.0..=1.0).contains(&t.success_rate));
            assert!((0.0..=1.0).contains(&t.mean_iou));
            assert!((0.0..=1.0).contains(&t.mean_confidence));
        }
    }

    #[test]
    fn load_costs_are_populated_per_accelerator() {
        let c = small_characterization();
        let tiny = c.traits_of(ModelId::YoloV7Tiny).unwrap();
        assert!(tiny.load_time_s.get(&AcceleratorId::Gpu).unwrap() > &0.0);
        assert!(
            tiny.load_time_s.get(&AcceleratorId::OakD).unwrap()
                > tiny.load_time_s.get(&AcceleratorId::Gpu).unwrap(),
            "OAK-D loads are slower than GPU loads"
        );
    }

    #[test]
    fn characterization_is_deterministic() {
        let dataset = CharacterizationDataset::generate(60, 5);
        let a = characterize(&engine(), &dataset);
        let b = characterize(&engine(), &dataset);
        assert_eq!(a, b);
    }
}
