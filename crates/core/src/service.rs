//! Fleet-as-a-service: a long-running session layer over the fleet runtime.
//!
//! [`FleetRuntime`] is a batch job: it takes a fixed stream set at
//! construction and runs to completion. Production serving is the opposite
//! shape — client sessions attach and detach at arbitrary times against a
//! runtime that never stops. [`FleetService`] provides that shape as a
//! deterministic request/response protocol (no real sockets): typed
//! [`SessionRequest`] messages in, typed [`SessionEvent`] messages out, with
//! attach/detach scheduled as first-class discrete events
//! ([`EventKind::SessionAttach`] / [`EventKind::SessionDetach`]) on the same
//! clock the fleet's fault edges fire on.
//!
//! # SLO-aware admission
//!
//! A session attaches with a scenario, an accuracy goal and a
//! [`DeadlineClass`]. Before any stream state is created, admission runs a
//! *projection* — pure reads of the shared occupancy tracker, memory
//! arbiter and offline characterization:
//!
//! 1. **Feasibility** — can any (model, accelerator) pair meet the goal at
//!    all (the same check [`StreamAgent::new`] performs)?
//! 2. **Memory** — does the goal's initial pair fit its pool alongside the
//!    models other sessions have pinned
//!    ([`MemoryArbiter::pinned_demand_mb`](shift_soc::MemoryArbiter::pinned_demand_mb))?
//! 3. **Occupancy** — under round-robin interleaving, a frame of this
//!    session serializes behind one frame of every active peer on the same
//!    accelerator; the projected per-frame latency must fit the deadline
//!    class's budget.
//!
//! A goal that fails is retried down a degrade ladder
//! ([`ServicePolicy::degrade_step`] at a time, down to
//! [`ServicePolicy::degrade_floor`]): the service *offers back* the lower
//! goal rather than thrash the shared loader. When even the floor fails,
//! overload shedding plans an eviction set of the lowest-priority
//! already-degraded sessions and commits it only if the higher-priority
//! request then fits — no session is shed for an arrival that bounces
//! anyway; only then is the request rejected.
//!
//! # Determinism
//!
//! The service adds no clocks and no randomness: requests are processed
//! either immediately ([`FleetService::submit`]) or at a scheduled discrete
//! tick ([`FleetService::schedule`]), and all admission projections are pure
//! functions of current state. A fixed-set service run — every session
//! attached up front, none detached — is **bit-identical** to
//! [`FleetRuntime::run_to_completion`] on the same specs, in both execution
//! modes and at any artifact worker count (locked by golden tests).
//!
//! [`EventKind::SessionAttach`]: crate::des::EventKind::SessionAttach
//! [`EventKind::SessionDetach`]: crate::des::EventKind::SessionDetach

use crate::characterize::Characterization;
use crate::config::ShiftConfig;
use crate::des::{EventKind, EventQueue};
use crate::fleet::{FleetBuilder, FleetFrameOutcome, FleetRuntime, StreamHandle, StreamSpec};
use crate::runtime::StreamAgent;
use crate::ShiftError;
use serde::{Deserialize, Serialize};
use shift_video::Scenario;

/// Opaque identity of one session, minted by the service at attach-request
/// time (admitted or not) and never reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SessionId(u64);

impl SessionId {
    /// The raw identity value (1-based, in request order).
    pub fn value(self) -> u64 {
        self.0
    }

    /// Reconstructs an identity from its raw value — for replaying recorded
    /// traces, where the ids a deterministic run will mint are known in
    /// advance. An id the service never minted is answered with
    /// [`SessionEvent::UnknownSession`].
    pub fn from_value(value: u64) -> Self {
        Self(value)
    }
}

impl std::fmt::Display for SessionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "session-{}", self.0)
    }
}

/// Latency service class a session attaches under: how much projected
/// per-frame latency admission may accept on its behalf, and how much the
/// session is worth when overload shedding looks for victims.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DeadlineClass {
    /// Tight per-frame latency budget, highest shedding priority.
    Interactive,
    /// Moderate latency budget (the default for pre-admitted batch specs).
    Standard,
    /// No latency budget — admitted whenever a pair fits memory — and the
    /// first to be shed under overload.
    Batch,
}

impl DeadlineClass {
    /// Shedding priority: higher keeps its slot longer.
    pub const fn priority(self) -> u8 {
        match self {
            DeadlineClass::Interactive => 2,
            DeadlineClass::Standard => 1,
            DeadlineClass::Batch => 0,
        }
    }

    /// Stable lowercase label (used in session CSV rows).
    pub const fn label(self) -> &'static str {
        match self {
            DeadlineClass::Interactive => "interactive",
            DeadlineClass::Standard => "standard",
            DeadlineClass::Batch => "batch",
        }
    }
}

/// Why an attach request was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RejectReason {
    /// No (model, accelerator) pair can meet any goal on the ladder.
    InfeasibleGoal,
    /// Every ladder goal's initial pair is memory-blocked by pinned peers.
    MemoryExhausted,
    /// The projected per-frame latency exceeds the deadline class's budget
    /// at every ladder goal.
    Saturated,
}

impl RejectReason {
    /// Stable lowercase label (used in session CSV rows).
    pub const fn label(self) -> &'static str {
        match self {
            RejectReason::InfeasibleGoal => "infeasible_goal",
            RejectReason::MemoryExhausted => "memory_exhausted",
            RejectReason::Saturated => "saturated",
        }
    }
}

/// An attach request: the scenario a would-be session wants played, under
/// which configuration (its `accuracy_goal` is the requested goal) and
/// deadline class.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttachRequest {
    /// Human-readable session label (also the stream label on admission).
    pub name: String,
    /// The video the session wants played.
    pub scenario: Scenario,
    /// Per-session SHIFT configuration; `config.accuracy_goal` is the
    /// *requested* goal (admission may offer a degraded one back).
    pub config: ShiftConfig,
    /// The session's latency service class.
    pub deadline: DeadlineClass,
    /// First scenario frame the session plays (`0` from the top). A live
    /// migration re-attaches a session on another node resuming from the
    /// frame it had reached.
    pub start_frame: usize,
}

impl AttachRequest {
    /// Creates an attach request that plays its scenario from the first
    /// frame.
    pub fn new(
        name: impl Into<String>,
        scenario: Scenario,
        config: ShiftConfig,
        deadline: DeadlineClass,
    ) -> Self {
        Self {
            name: name.into(),
            scenario,
            config,
            deadline,
            start_frame: 0,
        }
    }

    /// Resumes the scenario at `start_frame` instead of frame 0.
    pub fn with_start_frame(mut self, start_frame: usize) -> Self {
        self.start_frame = start_frame;
        self
    }
}

/// The service's request protocol.
///
/// `Attach` carries the full request inline (a few hundred bytes, dominated
/// by the scenario): requests are control-plane values minted a handful of
/// times per run, so the size skew never touches a per-frame path and boxing
/// would only complicate every construction site.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SessionRequest {
    /// Attach a new session (admission-controlled).
    Attach(AttachRequest),
    /// Detach a session; its remaining frames are dropped.
    Detach(SessionId),
    /// Query a session's status.
    Query(SessionId),
}

/// The service's response protocol: one event per processed request, plus
/// [`SessionEvent::Shed`] events for sessions evicted by overload shedding.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SessionEvent {
    /// The session was admitted. `admitted_goal < requested_goal` means the
    /// service degraded the goal to fit current load (the degrade offer).
    Admitted {
        /// The minted session identity.
        session: SessionId,
        /// The goal the request asked for.
        requested_goal: f64,
        /// The goal the session actually runs at.
        admitted_goal: f64,
    },
    /// The session was rejected; no stream state was created.
    Rejected {
        /// The minted session identity (kept for the lifecycle record).
        session: SessionId,
        /// The request's label.
        name: String,
        /// Why admission failed.
        reason: RejectReason,
    },
    /// The session detached on request.
    Detached {
        /// The detached session.
        session: SessionId,
        /// Frames it processed over its lifetime.
        frames: usize,
    },
    /// The session was evicted by overload shedding on behalf of a
    /// higher-priority attach request.
    Shed {
        /// The evicted session.
        session: SessionId,
        /// Its label.
        name: String,
    },
    /// A query response.
    Status {
        /// The queried session.
        session: SessionId,
        /// Its label.
        name: String,
        /// Frames processed so far.
        frames: usize,
        /// The goal it runs at (the admitted, possibly degraded, goal).
        admitted_goal: f64,
        /// Whether it is still attached.
        attached: bool,
    },
    /// The request named a session this service never admitted (or one
    /// already gone).
    UnknownSession {
        /// The unknown identity.
        session: SessionId,
    },
}

/// Admission-control policy knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServicePolicy {
    /// Lowest accuracy goal the degrade ladder offers (requests below it
    /// are probed at their own goal only).
    pub degrade_floor: f64,
    /// Ladder step size between probed goals.
    pub degrade_step: f64,
    /// Whether overload shedding may evict degraded lower-priority sessions
    /// to admit a higher-priority request. Evictions commit only when they
    /// actually let the request in.
    pub shed_to_admit: bool,
    /// Projected per-frame latency budget of [`DeadlineClass::Interactive`],
    /// seconds.
    pub interactive_budget_s: f64,
    /// Projected per-frame latency budget of [`DeadlineClass::Standard`],
    /// seconds ([`DeadlineClass::Batch`] is unbounded).
    pub standard_budget_s: f64,
}

impl ServicePolicy {
    /// The default policy: a 0.15 floor walked in 0.05 steps, shedding
    /// enabled, 50 ms interactive and 250 ms standard budgets.
    pub fn defaults() -> Self {
        Self {
            degrade_floor: 0.15,
            degrade_step: 0.05,
            shed_to_admit: true,
            interactive_budget_s: 0.05,
            standard_budget_s: 0.25,
        }
    }

    /// Returns a copy with different latency budgets.
    pub fn with_budgets(mut self, interactive_s: f64, standard_s: f64) -> Self {
        self.interactive_budget_s = interactive_s;
        self.standard_budget_s = standard_s;
        self
    }

    /// Returns a copy with a different degrade ladder.
    pub fn with_degrade_ladder(mut self, floor: f64, step: f64) -> Self {
        self.degrade_floor = floor;
        self.degrade_step = step;
        self
    }

    /// Returns a copy with overload shedding enabled or disabled.
    pub fn with_shedding(mut self, shed_to_admit: bool) -> Self {
        self.shed_to_admit = shed_to_admit;
        self
    }

    /// The projected-latency budget of `class`, seconds.
    pub fn budget_s(&self, class: DeadlineClass) -> f64 {
        match class {
            DeadlineClass::Interactive => self.interactive_budget_s,
            DeadlineClass::Standard => self.standard_budget_s,
            DeadlineClass::Batch => f64::INFINITY,
        }
    }
}

impl Default for ServicePolicy {
    fn default() -> Self {
        Self::defaults()
    }
}

/// Snapshot of one session's lifecycle, for metrics and artifacts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionRecord {
    /// The session's identity.
    pub session: SessionId,
    /// Its label.
    pub name: String,
    /// Its deadline class.
    pub deadline: DeadlineClass,
    /// The goal the request asked for.
    pub requested_goal: f64,
    /// The goal admission granted (equal to `requested_goal` unless
    /// degraded; meaningless when rejected).
    pub admitted_goal: f64,
    /// `None` when admitted; `Some(reason)` when rejected.
    pub rejected: Option<RejectReason>,
    /// Tick the attach request was scheduled for (or submitted at).
    pub requested_tick: u64,
    /// Tick admission decided at; `decided_tick - requested_tick` is the
    /// admission latency in ticks.
    pub decided_tick: u64,
    /// Tick the session detached (by request or shedding), when it has.
    pub detached_tick: Option<u64>,
    /// Whether the session was evicted by overload shedding.
    pub shed: bool,
    /// Frames processed so far (final count once detached).
    pub frames: usize,
}

impl SessionRecord {
    /// Whether the session runs (or ran) at a degraded goal.
    pub fn degraded(&self) -> bool {
        self.rejected.is_none() && self.admitted_goal < self.requested_goal - 1e-12
    }

    /// Frames spent degraded — the session's time-in-degrade on the
    /// discrete clock (all of its frames, since the goal is fixed at
    /// admission).
    pub fn degraded_frames(&self) -> usize {
        if self.degraded() {
            self.frames
        } else {
            0
        }
    }
}

/// Internal per-session state.
#[derive(Debug, Clone)]
struct SessionState {
    id: SessionId,
    name: String,
    deadline: DeadlineClass,
    requested_goal: f64,
    admitted_goal: f64,
    handle: Option<StreamHandle>,
    rejected: Option<RejectReason>,
    requested_tick: u64,
    decided_tick: u64,
    detached_tick: Option<u64>,
    shed: bool,
}

impl SessionState {
    fn is_attached(&self) -> bool {
        self.handle.is_some() && self.detached_tick.is_none()
    }
}

/// A scheduled session operation (the payload of the service's own event
/// queue).
///
/// Same inline-`Attach` trade-off as [`SessionRequest`]: ops are minted once
/// per request, never per frame.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
enum SessionOp {
    Attach(AttachRequest),
    Detach(SessionId),
    Query(SessionId),
}

/// What one ladder rung's projection concluded.
enum Probe {
    Pass,
    NoPairs,
    Memory,
    Saturated,
}

/// The long-running session service over a [`FleetRuntime`].
///
/// Built via [`FleetBuilder::build_service`]; specs already on the builder
/// are *pre-admitted* at tick 0 (the batch-compat path — admission control
/// guards only the dynamic door), so a fixed-set service run is
/// bit-identical to the batch runtime on the same specs.
///
/// ```
/// use shift_core::prelude::*;
/// use shift_core::fleet::FleetBuilder;
/// use shift_core::service::{AttachRequest, DeadlineClass, ServicePolicy, SessionEvent, SessionRequest};
/// use shift_models::{ModelZoo, ResponseModel};
/// use shift_soc::{ExecutionEngine, Platform};
/// use shift_video::{CharacterizationDataset, Scenario};
///
/// let engine = ExecutionEngine::new(
///     Platform::xavier_nx_with_oak(),
///     ModelZoo::standard(),
///     ResponseModel::new(5),
/// );
/// let characterization = characterize(&engine, &CharacterizationDataset::generate(120, 5));
/// let mut service = FleetBuilder::new(engine, &characterization)
///     .build_service(ServicePolicy::defaults())?;
/// let event = service.submit(SessionRequest::Attach(AttachRequest::new(
///     "cam-0",
///     Scenario::scenario_3().with_num_frames(8),
///     ShiftConfig::paper_defaults().with_accuracy_goal(0.3),
///     DeadlineClass::Standard,
/// )));
/// assert!(matches!(event, SessionEvent::Admitted { .. }));
/// let outcomes = service.run_until_idle()?;
/// assert_eq!(outcomes.len(), 8);
/// # Ok::<(), shift_core::ShiftError>(())
/// ```
#[derive(Debug, Clone)]
pub struct FleetService {
    fleet: FleetRuntime,
    characterization: Characterization,
    policy: ServicePolicy,
    /// Scheduled attach/detach/query operations, keyed on the fleet's
    /// discrete clock with the session event ranks (detach before attach at
    /// the same tick).
    ops: EventQueue<SessionOp>,
    sessions: Vec<SessionState>,
    /// Tick-stamped protocol events, in emission order.
    log: Vec<(u64, SessionEvent)>,
}

impl FleetService {
    /// Builds a service from a builder's parts (used by
    /// [`FleetBuilder::build_service`]).
    pub(crate) fn from_builder(
        builder: FleetBuilder<'_>,
        policy: ServicePolicy,
    ) -> Result<Self, ShiftError> {
        let FleetBuilder {
            engine,
            characterization,
            config,
            specs,
            fault_plan,
            mode,
        } = builder;
        let mut fleet = FleetRuntime::empty(engine, config).with_execution_mode(mode);
        if let Some(plan) = fault_plan {
            fleet = fleet.with_fault_plan(plan);
        }
        let mut service = Self {
            fleet,
            characterization: characterization.clone(),
            policy,
            ops: EventQueue::new(),
            sessions: Vec::new(),
            log: Vec::new(),
        };
        for spec in specs {
            service.attach_preadmitted(spec)?;
        }
        Ok(service)
    }

    /// Attaches one spec without admission control (the batch-compat path:
    /// builder specs are pre-validated workloads, and bypassing the
    /// projection keeps the fixed-set run bit-identical to the batch
    /// runtime).
    fn attach_preadmitted(&mut self, spec: StreamSpec) -> Result<(), ShiftError> {
        let goal = spec.config.accuracy_goal;
        let name = spec.name.clone();
        let handle = self.fleet.attach_stream(&self.characterization, spec)?;
        let id = self.mint_id();
        self.sessions.push(SessionState {
            id,
            name,
            deadline: DeadlineClass::Standard,
            requested_goal: goal,
            admitted_goal: goal,
            handle: Some(handle),
            rejected: None,
            requested_tick: 0,
            decided_tick: 0,
            detached_tick: None,
            shed: false,
        });
        self.log.push((
            0,
            SessionEvent::Admitted {
                session: id,
                requested_goal: goal,
                admitted_goal: goal,
            },
        ));
        Ok(())
    }

    fn mint_id(&self) -> SessionId {
        SessionId(self.sessions.len() as u64 + 1)
    }

    fn session_index(&self, id: SessionId) -> Option<usize> {
        let index = id.0.checked_sub(1)? as usize;
        (index < self.sessions.len()).then_some(index)
    }

    /// The current discrete tick (frames admitted so far).
    pub fn ticks(&self) -> u64 {
        self.fleet.ticks()
    }

    /// The underlying fleet (for inspecting shared state: engine telemetry,
    /// occupancy, arbiter, stream views).
    pub fn fleet(&self) -> &FleetRuntime {
        &self.fleet
    }

    /// The admission policy.
    pub fn policy(&self) -> &ServicePolicy {
        &self.policy
    }

    /// Sessions currently attached (admitted and not yet detached or shed).
    pub fn active_sessions(&self) -> usize {
        self.sessions.iter().filter(|s| s.is_attached()).count()
    }

    /// The stream handle behind an admitted, still-attached session.
    pub fn stream_of(&self, id: SessionId) -> Option<StreamHandle> {
        let state = &self.sessions[self.session_index(id)?];
        state.is_attached().then(|| state.handle.expect("attached"))
    }

    /// Lifecycle snapshot of every session ever requested, in request
    /// order (the per-session metrics surface).
    pub fn sessions(&self) -> Vec<SessionRecord> {
        self.sessions
            .iter()
            .map(|s| SessionRecord {
                session: s.id,
                name: s.name.clone(),
                deadline: s.deadline,
                requested_goal: s.requested_goal,
                admitted_goal: s.admitted_goal,
                rejected: s.rejected,
                requested_tick: s.requested_tick,
                decided_tick: s.decided_tick,
                detached_tick: s.detached_tick,
                shed: s.shed,
                frames: s
                    .handle
                    .map(|h| self.fleet.stream(h).frames_processed())
                    .unwrap_or(0),
            })
            .collect()
    }

    /// Takes the tick-stamped protocol event log accumulated so far.
    pub fn drain_events(&mut self) -> Vec<(u64, SessionEvent)> {
        std::mem::take(&mut self.log)
    }

    /// Charges an out-of-band cost (a live-migration transfer plus the model
    /// re-warm on the destination node) to an attached session's stream; the
    /// cost lands on the stream's next processed frame exactly like a loader
    /// miss. Returns `false` (and charges nothing) when the session is not
    /// attached.
    pub(crate) fn charge_session_load(
        &mut self,
        id: SessionId,
        time_s: f64,
        energy_j: f64,
    ) -> bool {
        let Some(handle) = self.stream_of(id) else {
            return false;
        };
        self.fleet.charge_stream_load(handle, time_s, energy_j);
        true
    }

    /// Processes one request immediately, at the current tick, and returns
    /// its response event (which is also appended to the event log).
    pub fn submit(&mut self, request: SessionRequest) -> SessionEvent {
        let tick = self.fleet.ticks();
        self.process_request(tick, request)
    }

    /// Schedules a request for a future tick (frames-admitted clock).
    /// Detaches rank before attaches at the same tick — a departing
    /// session's capacity is visible to the same tick's admission checks —
    /// and queries rank with attaches. Response events land in the event
    /// log when the tick arrives.
    pub fn schedule(&mut self, tick: u64, request: SessionRequest) {
        let (kind, op) = match request {
            SessionRequest::Attach(req) => (EventKind::SessionAttach, SessionOp::Attach(req)),
            SessionRequest::Detach(id) => (EventKind::SessionDetach, SessionOp::Detach(id)),
            SessionRequest::Query(id) => (EventKind::SessionAttach, SessionOp::Query(id)),
        };
        self.ops.schedule(tick, kind, 0, op);
    }

    /// Pops and processes every scheduled operation due at or before the
    /// current tick, in the event queue's total order.
    fn process_due_ops(&mut self) {
        let tick = self.fleet.ticks();
        while self.ops.peek().is_some_and(|key| key.time <= tick) {
            let event = self.ops.pop().expect("peeked");
            let request = match event.payload {
                SessionOp::Attach(req) => SessionRequest::Attach(req),
                SessionOp::Detach(id) => SessionRequest::Detach(id),
                SessionOp::Query(id) => SessionRequest::Query(id),
            };
            self.process_request(tick, request);
        }
    }

    /// Advances the service by one frame: due session operations are
    /// processed first, then the fleet steps. When the fleet is idle but
    /// operations are scheduled for future ticks, the clock fast-forwards
    /// to the next one (the classic next-event jump). Returns `Ok(None)`
    /// only when the fleet is drained *and* no operations remain.
    ///
    /// # Errors
    ///
    /// Propagates the fleet's unrecoverable errors.
    pub fn step(&mut self) -> Result<Option<FleetFrameOutcome>, ShiftError> {
        loop {
            self.process_due_ops();
            if let Some(outcome) = self.fleet.step()? {
                return Ok(Some(outcome));
            }
            let Some(next) = self.ops.peek().map(|key| key.time) else {
                return Ok(None);
            };
            self.fleet.advance_ticks_to(next);
        }
    }

    /// Runs until the fleet is drained and no scheduled operations remain,
    /// returning every frame outcome in admission order.
    ///
    /// # Errors
    ///
    /// Propagates the first unrecoverable error.
    pub fn run_until_idle(&mut self) -> Result<Vec<FleetFrameOutcome>, ShiftError> {
        let mut outcomes = Vec::new();
        while let Some(outcome) = self.step()? {
            outcomes.push(outcome);
        }
        Ok(outcomes)
    }

    /// Dispatches one request at `tick`, logging and returning its response.
    fn process_request(&mut self, tick: u64, request: SessionRequest) -> SessionEvent {
        let event = match request {
            SessionRequest::Attach(req) => self.process_attach(tick, req),
            SessionRequest::Detach(id) => self.process_detach(tick, id),
            SessionRequest::Query(id) => self.process_query(id),
        };
        self.log.push((tick, event.clone()));
        event
    }

    fn process_attach(&mut self, tick: u64, req: AttachRequest) -> SessionEvent {
        let requested_goal = req.config.accuracy_goal;
        let decision = self.admit(tick, &req);
        let id = self.mint_id();
        match decision {
            Ok(goal) => {
                let spec = StreamSpec::new(
                    req.name.clone(),
                    req.scenario,
                    req.config.with_accuracy_goal(goal),
                )
                .with_start_frame(req.start_frame);
                match self.fleet.attach_stream(&self.characterization, spec) {
                    Ok(handle) => {
                        self.sessions.push(SessionState {
                            id,
                            name: req.name,
                            deadline: req.deadline,
                            requested_goal,
                            admitted_goal: goal,
                            handle: Some(handle),
                            rejected: None,
                            requested_tick: tick,
                            decided_tick: tick,
                            detached_tick: None,
                            shed: false,
                        });
                        SessionEvent::Admitted {
                            session: id,
                            requested_goal,
                            admitted_goal: goal,
                        }
                    }
                    // The projection said yes but construction failed (e.g.
                    // a fault window dropped the accelerator between probe
                    // and attach): surface it as a rejection, not a panic.
                    Err(_) => self.record_rejection(
                        id,
                        req.name,
                        req.deadline,
                        requested_goal,
                        tick,
                        RejectReason::InfeasibleGoal,
                    ),
                }
            }
            Err(reason) => {
                self.record_rejection(id, req.name, req.deadline, requested_goal, tick, reason)
            }
        }
    }

    fn record_rejection(
        &mut self,
        id: SessionId,
        name: String,
        deadline: DeadlineClass,
        requested_goal: f64,
        tick: u64,
        reason: RejectReason,
    ) -> SessionEvent {
        self.sessions.push(SessionState {
            id,
            name: name.clone(),
            deadline,
            requested_goal,
            admitted_goal: requested_goal,
            handle: None,
            rejected: Some(reason),
            requested_tick: tick,
            decided_tick: tick,
            detached_tick: None,
            shed: false,
        });
        SessionEvent::Rejected {
            session: id,
            name,
            reason,
        }
    }

    fn process_detach(&mut self, tick: u64, id: SessionId) -> SessionEvent {
        let Some(index) = self.session_index(id) else {
            return SessionEvent::UnknownSession { session: id };
        };
        if !self.sessions[index].is_attached() {
            return SessionEvent::UnknownSession { session: id };
        }
        let handle = self.sessions[index].handle.expect("attached");
        self.fleet.detach_stream(handle);
        self.sessions[index].detached_tick = Some(tick);
        SessionEvent::Detached {
            session: id,
            frames: self.fleet.stream(handle).frames_processed(),
        }
    }

    fn process_query(&self, id: SessionId) -> SessionEvent {
        let Some(index) = self.session_index(id) else {
            return SessionEvent::UnknownSession { session: id };
        };
        let state = &self.sessions[index];
        let Some(handle) = state.handle else {
            return SessionEvent::UnknownSession { session: id };
        };
        SessionEvent::Status {
            session: id,
            name: state.name.clone(),
            frames: self.fleet.stream(handle).frames_processed(),
            admitted_goal: state.admitted_goal,
            attached: state.is_attached(),
        }
    }

    /// Admission: walk the degrade ladder; on failure, plan an eviction set
    /// of degraded lower-priority sessions (when shedding is allowed) and
    /// commit it only if the ladder then passes — no session is shed for an
    /// arrival that bounces anyway. Returns the admitted goal or the final
    /// rejection reason.
    fn admit(&mut self, tick: u64, req: &AttachRequest) -> Result<f64, RejectReason> {
        match self.probe_ladder(req, &[]) {
            Ok(goal) => Ok(goal),
            Err(reason) => {
                // Shedding cannot help a goal no pair can ever meet.
                if !self.policy.shed_to_admit || reason == RejectReason::InfeasibleGoal {
                    return Err(reason);
                }
                // Grow the planned eviction set victim by victim, probing
                // each time as if the set were already gone; the sheds are
                // real only once a probe passes.
                let mut planned: Vec<usize> = Vec::new();
                loop {
                    let Some(victim) = self.pick_shed_victim(req.deadline, &planned) else {
                        return Err(reason);
                    };
                    planned.push(victim);
                    if let Ok(goal) = self.probe_ladder(req, &planned) {
                        for index in planned {
                            self.shed(tick, index);
                        }
                        return Ok(goal);
                    }
                }
            }
        }
    }

    /// Probes the goal ladder from the requested goal down to the floor,
    /// returning the first goal whose projection passes. `excluded` session
    /// indices are treated as already evicted (the planned shed set).
    fn probe_ladder(&self, req: &AttachRequest, excluded: &[usize]) -> Result<f64, RejectReason> {
        let requested = req.config.accuracy_goal;
        let floor = self.policy.degrade_floor.min(requested);
        let step = self.policy.degrade_step.max(1e-6);
        let mut blocked = RejectReason::InfeasibleGoal;
        let mut rung = 0u32;
        loop {
            let goal = requested - step * f64::from(rung);
            if goal < floor - 1e-9 {
                return Err(blocked);
            }
            match self.probe_goal(req, goal, excluded) {
                Probe::Pass => return Ok(goal),
                Probe::NoPairs => {}
                Probe::Memory => blocked = RejectReason::MemoryExhausted,
                Probe::Saturated => blocked = RejectReason::Saturated,
            }
            rung += 1;
        }
    }

    /// One ladder rung: pure projection of feasibility, memory and
    /// occupancy for a session admitted at `goal`, with the `excluded`
    /// sessions treated as already evicted. Mutates nothing.
    fn probe_goal(&self, req: &AttachRequest, goal: f64, excluded: &[usize]) -> Probe {
        let config = req.config.clone().with_accuracy_goal(goal);
        let Ok(agent) = StreamAgent::new(&self.characterization, config) else {
            return Probe::NoPairs;
        };
        // Deliverability: some allowed pair's characterized accuracy must
        // reach the goal, else this rung has nothing honest to offer and the
        // ladder keeps walking down.
        let best_iou = agent
            .scheduler()
            .candidate_pairs()
            .iter()
            .filter_map(|p| self.characterization.traits_of(p.model))
            .map(|t| t.mean_iou)
            .fold(f64::NEG_INFINITY, f64::max);
        if best_iou + 1e-9 < goal {
            return Probe::NoPairs;
        }
        let pair = agent.current_pair();
        let Some(traits) = self.characterization.traits_of(pair.model) else {
            return Probe::NoPairs;
        };
        let excluded_handles: Vec<StreamHandle> = excluded
            .iter()
            .filter_map(|&index| self.sessions[index].handle)
            .collect();
        // Memory projection: the initial pair must fit its pool alongside
        // what active sessions have pinned. (The runtime could still admit
        // by degrading a peer — exactly the loader thrash admission control
        // exists to refuse.)
        let Ok(pool) = self.fleet.engine().pool(pair.accelerator) else {
            return Probe::NoPairs;
        };
        let pinned_mb = self
            .fleet
            .arbiter()
            .pinned_demand_mb(pair.accelerator, |model| {
                self.characterization.traits_of(model).map(|t| t.memory_mb)
            });
        // Credit the models a planned eviction would release: a victim's
        // current model frees its footprint unless a surviving active
        // stream runs the same pair.
        let mut freed = Vec::new();
        for &victim in &excluded_handles {
            let victim_pair = self.fleet.stream(victim).agent().current_pair();
            if victim_pair.accelerator != pair.accelerator || freed.contains(&victim_pair.model) {
                continue;
            }
            let retained = self.fleet.handles().into_iter().any(|other| {
                other != victim && !excluded_handles.contains(&other) && {
                    let view = self.fleet.stream(other);
                    !view.is_idle() && view.agent().current_pair() == victim_pair
                }
            });
            if !retained {
                freed.push(victim_pair.model);
            }
        }
        let freed_mb: f64 = freed
            .iter()
            .filter_map(|&model| self.characterization.traits_of(model))
            .map(|t| t.memory_mb)
            .sum();
        if pinned_mb - freed_mb + traits.memory_mb > pool.effective_capacity_mb() + 1e-9 {
            return Probe::Memory;
        }
        // Occupancy projection: under round-robin admission, each of this
        // session's frames serializes behind one frame of every active peer
        // on the same accelerator.
        let Some(own) = traits.stats_on(pair.accelerator) else {
            return Probe::NoPairs;
        };
        let mut projected_s = own.mean_latency_s;
        for handle in self.fleet.handles() {
            if excluded_handles.contains(&handle) {
                continue;
            }
            let view = self.fleet.stream(handle);
            if view.is_idle() {
                continue;
            }
            let peer = view.agent().current_pair();
            if peer.accelerator != pair.accelerator {
                continue;
            }
            if let Some(stats) = self
                .characterization
                .traits_of(peer.model)
                .and_then(|t| t.stats_on(peer.accelerator))
            {
                projected_s += stats.mean_latency_s;
            }
        }
        if projected_s > self.policy.budget_s(req.deadline) {
            return Probe::Saturated;
        }
        Probe::Pass
    }

    /// The next shedding victim for an incoming request of `incoming`
    /// class: among attached, non-idle, *degraded* sessions of strictly
    /// lower priority not already in the `planned` eviction set, the
    /// lowest-priority one, oldest first. `None` when no session qualifies.
    fn pick_shed_victim(&self, incoming: DeadlineClass, planned: &[usize]) -> Option<usize> {
        let mut best: Option<(u8, u64, usize)> = None;
        for (index, state) in self.sessions.iter().enumerate() {
            if !state.is_attached() || planned.contains(&index) {
                continue;
            }
            let handle = state.handle.expect("attached");
            if self.fleet.stream(handle).is_idle() {
                continue;
            }
            if state.admitted_goal >= state.requested_goal - 1e-12 {
                continue;
            }
            if state.deadline.priority() >= incoming.priority() {
                continue;
            }
            let key = (state.deadline.priority(), state.id.0, index);
            if best.is_none_or(|b| key < b) {
                best = Some(key);
            }
        }
        best.map(|(_, _, index)| index)
    }

    /// Evicts session `index` on behalf of overload shedding.
    fn shed(&mut self, tick: u64, index: usize) {
        let handle = self.sessions[index].handle.expect("attached");
        self.fleet.detach_stream(handle);
        self.sessions[index].detached_tick = Some(tick);
        self.sessions[index].shed = true;
        let event = SessionEvent::Shed {
            session: self.sessions[index].id,
            name: self.sessions[index].name.clone(),
        };
        self.log.push((tick, event));
    }
}

impl FleetBuilder<'_> {
    /// Builds the long-running session service. Specs already on the
    /// builder are pre-admitted at tick 0 (the batch-compat path); the
    /// builder may also start empty — sessions then arrive only through
    /// [`FleetService::submit`] / [`FleetService::schedule`].
    ///
    /// # Errors
    ///
    /// Propagates stream-construction errors of the pre-admitted specs.
    pub fn build_service(self, policy: ServicePolicy) -> Result<FleetService, ShiftError> {
        FleetService::from_builder(self, policy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::characterize::characterize;
    use crate::des::ExecutionMode;
    use crate::fleet::{FleetConfig, FleetRuntime};
    use shift_models::{ModelZoo, ResponseModel};
    use shift_soc::{AcceleratorId, ExecutionEngine, Platform};
    use shift_video::CharacterizationDataset;

    fn engine(seed: u64) -> ExecutionEngine {
        ExecutionEngine::new(
            Platform::xavier_nx_with_oak(),
            ModelZoo::standard(),
            ResponseModel::new(seed),
        )
    }

    fn characterization(seed: u64) -> Characterization {
        characterize(&engine(seed), &CharacterizationDataset::generate(160, seed))
    }

    fn specs() -> Vec<StreamSpec> {
        vec![
            StreamSpec::new(
                "a",
                Scenario::scenario_1().with_num_frames(24),
                ShiftConfig::paper_defaults(),
            ),
            StreamSpec::new(
                "b",
                Scenario::scenario_3().with_num_frames(18),
                ShiftConfig::paper_defaults().with_accuracy_goal(0.35),
            ),
            StreamSpec::new(
                "c",
                Scenario::scenario_4().with_num_frames(21),
                ShiftConfig::paper_defaults(),
            ),
        ]
    }

    #[test]
    fn fixed_set_service_is_bit_identical_to_the_batch_runtime() {
        let characterization = characterization(41);
        for mode in [ExecutionMode::Lockstep, ExecutionMode::EventDriven] {
            let mut batch = FleetRuntime::new(
                engine(41),
                &characterization,
                FleetConfig::round_robin(),
                specs(),
            )
            .unwrap()
            .with_execution_mode(mode);
            let batch_outcomes = batch.run_to_completion().unwrap();

            let mut service = FleetBuilder::new(engine(41), &characterization)
                .streams(specs())
                .execution_mode(mode)
                .build_service(ServicePolicy::defaults())
                .unwrap();
            let service_outcomes = service.run_until_idle().unwrap();

            assert_eq!(service_outcomes, batch_outcomes);
            assert_eq!(
                format!("{:?}", service_outcomes).into_bytes(),
                format!("{:?}", batch_outcomes).into_bytes(),
                "byte-identical debug serialization ({mode:?})"
            );
            assert_eq!(service.fleet().makespan_s(), batch.makespan_s());
        }
    }

    #[test]
    fn fixed_set_service_under_faults_matches_the_batch_runtime() {
        let characterization = characterization(42);
        let plan = shift_soc::FaultPlan::generate(7, &shift_soc::FaultSpec::mixed(60));
        let mut batch = FleetRuntime::new(
            engine(42),
            &characterization,
            FleetConfig::round_robin(),
            specs(),
        )
        .unwrap()
        .with_fault_plan(plan.clone());
        let batch_outcomes = batch.run_to_completion().unwrap();
        let mut service = FleetBuilder::new(engine(42), &characterization)
            .streams(specs())
            .fault_plan(plan)
            .build_service(ServicePolicy::defaults())
            .unwrap();
        assert_eq!(service.run_until_idle().unwrap(), batch_outcomes);
    }

    #[test]
    fn dynamic_attach_is_admitted_and_processes_frames() {
        let characterization = characterization(43);
        let mut service = FleetBuilder::new(engine(43), &characterization)
            .build_service(ServicePolicy::defaults())
            .unwrap();
        let event = service.submit(SessionRequest::Attach(AttachRequest::new(
            "cam",
            Scenario::scenario_3().with_num_frames(10),
            ShiftConfig::paper_defaults().with_accuracy_goal(0.3),
            DeadlineClass::Standard,
        )));
        let SessionEvent::Admitted {
            session,
            requested_goal,
            admitted_goal,
        } = event
        else {
            panic!("expected admission, got {event:?}");
        };
        assert_eq!(requested_goal, 0.3);
        assert_eq!(admitted_goal, 0.3);
        assert_eq!(service.active_sessions(), 1);
        let outcomes = service.run_until_idle().unwrap();
        assert_eq!(outcomes.len(), 10);
        let status = service.submit(SessionRequest::Query(session));
        let SessionEvent::Status {
            frames, attached, ..
        } = status
        else {
            panic!("expected status, got {status:?}");
        };
        assert_eq!(frames, 10);
        assert!(attached, "drained but not detached");
    }

    #[test]
    fn detach_drops_remaining_frames_and_unknown_sessions_are_reported() {
        let characterization = characterization(44);
        let mut service = FleetBuilder::new(engine(44), &characterization)
            .stream(StreamSpec::new(
                "s",
                Scenario::scenario_3().with_num_frames(30),
                ShiftConfig::paper_defaults(),
            ))
            .build_service(ServicePolicy::defaults())
            .unwrap();
        let session = SessionId(1);
        for _ in 0..5 {
            service.step().unwrap();
        }
        let event = service.submit(SessionRequest::Detach(session));
        assert_eq!(event, SessionEvent::Detached { session, frames: 5 });
        assert_eq!(service.run_until_idle().unwrap().len(), 0);
        // Double-detach and unknown ids answer UnknownSession.
        assert_eq!(
            service.submit(SessionRequest::Detach(session)),
            SessionEvent::UnknownSession { session }
        );
        let ghost = SessionId(99);
        assert_eq!(
            service.submit(SessionRequest::Query(ghost)),
            SessionEvent::UnknownSession { session: ghost }
        );
        let records = service.sessions();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].frames, 5);
        assert_eq!(records[0].detached_tick, Some(5));
        assert!(!records[0].shed);
    }

    #[test]
    fn saturated_accelerator_degrades_then_rejects() {
        let characterization = characterization(45);
        // Pin everything onto the GPU and make the standard budget barely
        // fit one session, so the second request must degrade or bounce.
        let gpu_only =
            ShiftConfig::paper_defaults().with_allowed_accelerators(vec![AcceleratorId::Gpu]);
        let solo_latency = {
            let agent =
                StreamAgent::new(&characterization, gpu_only.clone().with_accuracy_goal(0.25))
                    .unwrap();
            let pair = agent.current_pair();
            characterization
                .traits_of(pair.model)
                .unwrap()
                .stats_on(pair.accelerator)
                .unwrap()
                .mean_latency_s
        };
        let policy = ServicePolicy::defaults()
            .with_budgets(solo_latency * 0.5, solo_latency * 1.5)
            .with_shedding(false);
        let mut service = FleetBuilder::new(engine(45), &characterization)
            .build_service(policy)
            .unwrap();
        let attach = |name: &str, deadline: DeadlineClass| {
            SessionRequest::Attach(AttachRequest::new(
                name,
                Scenario::scenario_1().with_num_frames(40),
                gpu_only.clone().with_accuracy_goal(0.25),
                deadline,
            ))
        };
        // First standard session fits its budget alone.
        let first = service.submit(attach("first", DeadlineClass::Standard));
        assert!(matches!(first, SessionEvent::Admitted { .. }), "{first:?}");
        // An interactive request can never fit half the solo latency.
        let second = service.submit(attach("second", DeadlineClass::Interactive));
        assert_eq!(
            second,
            SessionEvent::Rejected {
                session: SessionId(2),
                name: "second".into(),
                reason: RejectReason::Saturated,
            }
        );
        // A batch request has no latency budget: admitted despite the load.
        let third = service.submit(attach("third", DeadlineClass::Batch));
        assert!(matches!(third, SessionEvent::Admitted { .. }), "{third:?}");
    }

    #[test]
    fn degrade_ladder_offers_a_lower_goal_back() {
        let characterization = characterization(46);
        // Find a goal that is infeasible as requested but feasible lower
        // down the ladder: ask far above what any pair can deliver.
        let policy = ServicePolicy::defaults().with_degrade_ladder(0.15, 0.05);
        let mut service = FleetBuilder::new(engine(46), &characterization)
            .build_service(policy)
            .unwrap();
        let event = service.submit(SessionRequest::Attach(AttachRequest::new(
            "greedy",
            Scenario::scenario_3().with_num_frames(8),
            ShiftConfig::paper_defaults().with_accuracy_goal(0.95),
            DeadlineClass::Batch,
        )));
        let SessionEvent::Admitted {
            requested_goal,
            admitted_goal,
            ..
        } = event
        else {
            panic!("expected a degrade offer, got {event:?}");
        };
        assert_eq!(requested_goal, 0.95);
        assert!(
            admitted_goal < requested_goal,
            "goal must be degraded ({admitted_goal})"
        );
        let records = service.sessions();
        assert!(records[0].degraded());
    }

    #[test]
    fn overload_shedding_evicts_the_degraded_batch_session() {
        let characterization = characterization(47);
        let gpu_only =
            ShiftConfig::paper_defaults().with_allowed_accelerators(vec![AcceleratorId::Gpu]);
        let solo_latency = {
            let agent =
                StreamAgent::new(&characterization, gpu_only.clone().with_accuracy_goal(0.25))
                    .unwrap();
            let pair = agent.current_pair();
            characterization
                .traits_of(pair.model)
                .unwrap()
                .stats_on(pair.accelerator)
                .unwrap()
                .mean_latency_s
        };
        // Standard budget fits exactly one session on the GPU.
        let policy = ServicePolicy::defaults().with_budgets(solo_latency * 1.5, solo_latency * 1.5);
        let mut service = FleetBuilder::new(engine(47), &characterization)
            .build_service(policy)
            .unwrap();
        // A batch session admitted at a degraded goal (asks far too much).
        let batch = service.submit(SessionRequest::Attach(AttachRequest::new(
            "degraded-batch",
            Scenario::scenario_1().with_num_frames(40),
            gpu_only.clone().with_accuracy_goal(0.95),
            DeadlineClass::Batch,
        )));
        let SessionEvent::Admitted {
            session: victim, ..
        } = batch
        else {
            panic!("{batch:?}");
        };
        // A standard request now saturates the budget; shedding must evict
        // the degraded batch session to make room.
        let standard = service.submit(SessionRequest::Attach(AttachRequest::new(
            "standard",
            Scenario::scenario_1().with_num_frames(40),
            gpu_only.clone().with_accuracy_goal(0.25),
            DeadlineClass::Standard,
        )));
        assert!(
            matches!(standard, SessionEvent::Admitted { .. }),
            "{standard:?}"
        );
        assert_eq!(service.active_sessions(), 1);
        let records = service.sessions();
        assert!(records[0].shed, "the batch session was shed");
        assert_eq!(records[0].detached_tick, Some(0));
        let shed_events: Vec<_> = service
            .drain_events()
            .into_iter()
            .filter(|(_, e)| matches!(e, SessionEvent::Shed { session, .. } if *session == victim))
            .collect();
        assert_eq!(shed_events.len(), 1);
    }

    #[test]
    fn scheduled_attach_and_detach_fire_at_their_ticks() {
        let characterization = characterization(48);
        let mut service = FleetBuilder::new(engine(48), &characterization)
            .stream(StreamSpec::new(
                "base",
                Scenario::scenario_3().with_num_frames(20),
                ShiftConfig::paper_defaults(),
            ))
            .build_service(ServicePolicy::defaults())
            .unwrap();
        service.schedule(
            4,
            SessionRequest::Attach(AttachRequest::new(
                "late",
                Scenario::scenario_2().with_num_frames(6).with_seed(5),
                ShiftConfig::paper_defaults().with_accuracy_goal(0.25),
                DeadlineClass::Standard,
            )),
        );
        service.schedule(12, SessionRequest::Detach(SessionId(1)));
        let outcomes = service.run_until_idle().unwrap();
        // The tick clock counts total admitted frames: base runs alone for
        // ticks 0-3, then fairness lets "late" catch up, so by the detach at
        // tick 12 each stream has 6 frames and late is already drained.
        let records = service.sessions();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].frames, 6);
        assert_eq!(records[0].detached_tick, Some(12));
        assert_eq!(records[1].frames, 6);
        assert_eq!(records[1].requested_tick, 4);
        assert_eq!(records[1].decided_tick, 4);
        assert_eq!(outcomes.len(), 12);
        // Until tick 4 every outcome belongs to the base stream.
        assert!(outcomes[..4].iter().all(|o| o.stream == 0));
        assert!(outcomes.iter().any(|o| o.stream == 1));
    }

    #[test]
    fn idle_service_fast_forwards_to_future_scheduled_sessions() {
        let characterization = characterization(49);
        let mut service = FleetBuilder::new(engine(49), &characterization)
            .build_service(ServicePolicy::defaults())
            .unwrap();
        // Nothing attached; a session is scheduled far in the future.
        service.schedule(
            50,
            SessionRequest::Attach(AttachRequest::new(
                "later",
                Scenario::scenario_3().with_num_frames(5),
                ShiftConfig::paper_defaults().with_accuracy_goal(0.3),
                DeadlineClass::Standard,
            )),
        );
        let outcomes = service.run_until_idle().unwrap();
        assert_eq!(outcomes.len(), 5);
        let records = service.sessions();
        assert_eq!(records[0].decided_tick, 50);
        assert!(service.ticks() >= 50);
    }

    #[test]
    fn service_replays_are_deterministic() {
        let run = || {
            let characterization = characterization(50);
            let mut service = FleetBuilder::new(engine(50), &characterization)
                .streams(specs())
                .build_service(ServicePolicy::defaults())
                .unwrap();
            service.schedule(
                10,
                SessionRequest::Attach(AttachRequest::new(
                    "mid",
                    Scenario::scenario_2().with_num_frames(9).with_seed(3),
                    ShiftConfig::paper_defaults().with_accuracy_goal(0.25),
                    DeadlineClass::Interactive,
                )),
            );
            service.schedule(20, SessionRequest::Detach(SessionId(1)));
            let outcomes = service.run_until_idle().unwrap();
            let mut service = service;
            (outcomes, service.sessions(), service.drain_events())
        };
        assert_eq!(run(), run());
    }
}
