//! The confidence graph (paper §III-A, "Confidence Graph Creation").
//!
//! Confidence scores of different model architectures are not directly
//! comparable, but on any given validation frame the scores reported by
//! different models *co-occur*. The confidence graph captures those
//! co-occurrences:
//!
//! 1. Every node is a `(model, confidence-score bin)` pair annotated with the
//!    expected accuracy (mean IoU) of that model in that bin.
//! 2. For every validation image, edges are created between the nodes hit by
//!    each pair of models; repeated co-occurrences increment the edge weight.
//! 3. Edge weights are normalized per node and inverted so strongly
//!    correlated bins are cheap to traverse.
//! 4. A bounded shortest-path search from every node collects the neighbour
//!    nodes within a distance threshold.
//! 5. Neighbours belonging to the same model are consolidated by a
//!    distance-weighted average of their expected accuracies.
//! 6. The result is stored in a map, so the runtime prediction is a lookup —
//!    "Instead of relying on costly classifiers ... we can execute a map
//!    lookup at runtime."

use crate::characterize::SampleObservation;
use serde::{Deserialize, Serialize};
use shift_models::ModelId;
use std::collections::{BTreeMap, BinaryHeap};

/// Construction parameters of the confidence graph.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GraphConfig {
    /// Width of each confidence-score bin (the paper's example uses ranges
    /// like 0.5–0.6, i.e. a width of 0.1).
    pub bin_width: f64,
    /// Maximum accumulated traversal cost for a node to count as a neighbour
    /// (the paper's *distance threshold* knob; Table III uses 0.5).
    pub distance_threshold: f64,
    /// Minimum number of samples a node needs before it is trusted; bins with
    /// fewer samples are merged into their nearest populated neighbour.
    pub min_samples_per_node: usize,
}

impl GraphConfig {
    /// The configuration used for the paper's main results.
    pub fn paper_defaults() -> Self {
        Self {
            bin_width: 0.1,
            distance_threshold: 0.5,
            min_samples_per_node: 1,
        }
    }

    /// Returns a copy with a different distance threshold (Fig. 5 sweeps
    /// this).
    pub fn with_distance_threshold(mut self, distance_threshold: f64) -> Self {
        self.distance_threshold = distance_threshold.max(0.0);
        self
    }

    /// Returns a copy with a different bin width.
    pub fn with_bin_width(mut self, bin_width: f64) -> Self {
        self.bin_width = bin_width.clamp(0.01, 1.0);
        self
    }
}

impl Default for GraphConfig {
    fn default() -> Self {
        Self::paper_defaults()
    }
}

/// An accuracy prediction for one model, produced by a confidence-graph
/// lookup.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Prediction {
    /// The model whose accuracy is predicted.
    pub model: ModelId,
    /// Predicted accuracy (expected IoU) of that model on the current
    /// context.
    pub accuracy: f64,
    /// Graph distance from the queried node to the consolidated neighbours
    /// (0 for the queried model itself).
    pub distance: f64,
}

/// One node of the graph: a model restricted to a confidence bin.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Node {
    model: ModelId,
    bin: usize,
    expected_accuracy: f64,
    samples: usize,
}

/// The confidence graph and its precomputed prediction map.
///
/// ```
/// use shift_core::{characterize, ConfidenceGraph, GraphConfig};
/// use shift_models::{ModelZoo, ModelId, ResponseModel};
/// use shift_soc::{ExecutionEngine, Platform};
/// use shift_video::CharacterizationDataset;
///
/// let engine = ExecutionEngine::new(
///     Platform::xavier_nx_with_oak(),
///     ModelZoo::standard(),
///     ResponseModel::new(2),
/// );
/// let characterization = characterize(&engine, &CharacterizationDataset::generate(150, 3));
/// let graph = ConfidenceGraph::build(&characterization.samples, GraphConfig::paper_defaults());
/// // A high YoloV7 confidence should predict healthy accuracy for YoloV7 itself.
/// let predictions = graph.predict(ModelId::YoloV7, 0.85);
/// assert!(!predictions.is_empty());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConfidenceGraph {
    config: GraphConfig,
    nodes: Vec<Node>,
    /// Adjacency list with *inverted, per-source-normalized* edge costs in
    /// `[0, 1]` (lower = stronger correlation).
    adjacency: Vec<Vec<(usize, f64)>>,
    /// Precomputed prediction map: node index -> consolidated predictions.
    prediction_map: Vec<Vec<Prediction>>,
    /// Number of confidence bins.
    bin_count: usize,
}

impl ConfidenceGraph {
    /// Builds the confidence graph from per-frame characterization samples.
    ///
    /// Samples where a model produced no detection are skipped for that model
    /// (a missing detection carries no confidence information).
    pub fn build(samples: &[SampleObservation], config: GraphConfig) -> Self {
        let bin_count = (1.0 / config.bin_width).ceil() as usize;
        let bin_of = |confidence: f64| -> usize {
            ((confidence / config.bin_width) as usize).min(bin_count - 1)
        };

        // --- Step 1: create nodes and accumulate expected accuracy. ---
        let mut node_lookup: BTreeMap<(ModelId, usize), usize> = BTreeMap::new();
        let mut nodes: Vec<Node> = Vec::new();
        let mut accuracy_sum: Vec<f64> = Vec::new();
        let mut node_for = |model: ModelId,
                            bin: usize,
                            nodes: &mut Vec<Node>,
                            accuracy_sum: &mut Vec<f64>|
         -> usize {
            *node_lookup.entry((model, bin)).or_insert_with(|| {
                nodes.push(Node {
                    model,
                    bin,
                    expected_accuracy: 0.0,
                    samples: 0,
                });
                accuracy_sum.push(0.0);
                nodes.len() - 1
            })
        };

        // --- Step 2: accumulate edges from per-frame co-occurrences. ---
        let mut edge_counts: BTreeMap<(usize, usize), f64> = BTreeMap::new();
        for sample in samples {
            let mut frame_nodes: Vec<usize> = Vec::new();
            for (&model, obs) in &sample.per_model {
                if !obs.detected {
                    continue;
                }
                let idx = node_for(model, bin_of(obs.confidence), &mut nodes, &mut accuracy_sum);
                accuracy_sum[idx] += obs.iou;
                nodes[idx].samples += 1;
                frame_nodes.push(idx);
            }
            for i in 0..frame_nodes.len() {
                for j in (i + 1)..frame_nodes.len() {
                    let (a, b) = (frame_nodes[i], frame_nodes[j]);
                    if nodes[a].model == nodes[b].model {
                        continue;
                    }
                    let key = if a < b { (a, b) } else { (b, a) };
                    *edge_counts.entry(key).or_insert(0.0) += 1.0;
                }
            }
        }
        for (idx, node) in nodes.iter_mut().enumerate() {
            node.expected_accuracy = if node.samples > 0 {
                accuracy_sum[idx] / node.samples as f64
            } else {
                0.0
            };
        }

        // --- Step 3: per-node normalization and inversion of edge weights. ---
        let mut adjacency: Vec<Vec<(usize, f64)>> = vec![Vec::new(); nodes.len()];
        let mut incident_max: Vec<f64> = vec![0.0; nodes.len()];
        for (&(a, b), &count) in &edge_counts {
            incident_max[a] = incident_max[a].max(count);
            incident_max[b] = incident_max[b].max(count);
        }
        for (&(a, b), &count) in &edge_counts {
            // Normalize within the edges of the *source* node, then invert so
            // strongly connected pairs have a low traversal cost. A small
            // epsilon keeps even the strongest edge from being free.
            let cost_from_a = 1.0 - (count / incident_max[a].max(1.0)) + 1e-3;
            let cost_from_b = 1.0 - (count / incident_max[b].max(1.0)) + 1e-3;
            adjacency[a].push((b, cost_from_a));
            adjacency[b].push((a, cost_from_b));
        }

        // --- Steps 4-6: bounded shortest-path search and consolidation. ---
        let mut prediction_map = Vec::with_capacity(nodes.len());
        for source in 0..nodes.len() {
            let reachable = bounded_shortest_paths(&adjacency, source, config.distance_threshold);
            prediction_map.push(consolidate(&nodes, &reachable));
        }

        Self {
            config,
            nodes,
            adjacency,
            prediction_map,
            bin_count,
        }
    }

    /// The configuration this graph was built with.
    pub fn config(&self) -> GraphConfig {
        self.config
    }

    /// Number of nodes in the graph.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of (undirected) edges in the graph.
    pub fn edge_count(&self) -> usize {
        self.adjacency.iter().map(|adj| adj.len()).sum::<usize>() / 2
    }

    /// Predicts the accuracy of every model given that `model` just reported
    /// `confidence`.
    ///
    /// The prediction is a map lookup: the queried confidence is binned, the
    /// corresponding node's precomputed neighbour consolidation is returned.
    /// If the exact bin was never populated during characterization the
    /// nearest populated bin of the same model is used. An unknown model (or
    /// an empty graph) yields an empty vector.
    pub fn predict(&self, model: ModelId, confidence: f64) -> Vec<Prediction> {
        let Some(node) = self.find_node(model, confidence) else {
            return Vec::new();
        };
        self.prediction_map[node].clone()
    }

    /// Expected accuracy stored on the node for (`model`, `confidence`), if
    /// such a node exists. Exposed for ablation studies comparing the graph
    /// against naive confidence passthrough.
    pub fn node_accuracy(&self, model: ModelId, confidence: f64) -> Option<f64> {
        self.find_node(model, confidence)
            .map(|idx| self.nodes[idx].expected_accuracy)
    }

    /// Models that appear in the graph.
    pub fn models(&self) -> Vec<ModelId> {
        let mut models: Vec<ModelId> = self.nodes.iter().map(|n| n.model).collect();
        models.sort();
        models.dedup();
        models
    }

    fn bin_of(&self, confidence: f64) -> usize {
        ((confidence.clamp(0.0, 0.999) / self.config.bin_width) as usize).min(self.bin_count - 1)
    }

    fn find_node(&self, model: ModelId, confidence: f64) -> Option<usize> {
        let target_bin = self.bin_of(confidence);
        let mut best: Option<(usize, usize)> = None; // (bin distance, node index)
        for (idx, node) in self.nodes.iter().enumerate() {
            if node.model != model {
                continue;
            }
            let distance = node.bin.abs_diff(target_bin);
            match best {
                Some((best_distance, _)) if distance >= best_distance => {}
                _ => best = Some((distance, idx)),
            }
            if distance == 0 {
                break;
            }
        }
        best.map(|(_, idx)| idx)
    }
}

/// Dijkstra bounded by `threshold`: returns `(node, distance)` for every node
/// whose accumulated traversal cost from `source` is at most the threshold
/// (always including the source itself at distance zero).
fn bounded_shortest_paths(
    adjacency: &[Vec<(usize, f64)>],
    source: usize,
    threshold: f64,
) -> Vec<(usize, f64)> {
    #[derive(PartialEq)]
    struct Entry {
        cost: f64,
        node: usize,
    }
    impl Eq for Entry {}
    impl Ord for Entry {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            // Reverse for a min-heap on cost.
            other
                .cost
                .partial_cmp(&self.cost)
                .unwrap_or(std::cmp::Ordering::Equal)
        }
    }
    impl PartialOrd for Entry {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }

    let mut best: Vec<f64> = vec![f64::INFINITY; adjacency.len()];
    let mut heap = BinaryHeap::new();
    best[source] = 0.0;
    heap.push(Entry {
        cost: 0.0,
        node: source,
    });
    while let Some(Entry { cost, node }) = heap.pop() {
        if cost > best[node] {
            continue;
        }
        for &(next, edge_cost) in &adjacency[node] {
            let next_cost = cost + edge_cost;
            if next_cost <= threshold && next_cost < best[next] {
                best[next] = next_cost;
                heap.push(Entry {
                    cost: next_cost,
                    node: next,
                });
            }
        }
    }
    best.iter()
        .enumerate()
        .filter(|(_, &d)| d.is_finite())
        .map(|(idx, &d)| (idx, d))
        .collect()
}

/// Consolidates reachable nodes into one prediction per model using a
/// distance-weighted average of the nodes' expected accuracies.
fn consolidate(nodes: &[Node], reachable: &[(usize, f64)]) -> Vec<Prediction> {
    let mut weighted: BTreeMap<ModelId, (f64, f64, f64)> = BTreeMap::new(); // (acc*w, w, dist*w)
    for &(idx, distance) in reachable {
        let node = &nodes[idx];
        let weight = 1.0 / (0.05 + distance);
        let entry = weighted.entry(node.model).or_insert((0.0, 0.0, 0.0));
        entry.0 += node.expected_accuracy * weight;
        entry.1 += weight;
        entry.2 += distance * weight;
    }
    weighted
        .into_iter()
        .map(|(model, (acc_w, w, dist_w))| Prediction {
            model,
            accuracy: (acc_w / w.max(1e-12)).clamp(0.0, 1.0),
            distance: dist_w / w.max(1e-12),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::characterize::{characterize, Characterization, ModelObservation};
    use shift_models::{ModelZoo, ResponseModel};
    use shift_soc::{ExecutionEngine, Platform};
    use shift_video::CharacterizationDataset;

    fn real_characterization(samples: usize) -> Characterization {
        let engine = ExecutionEngine::new(
            Platform::xavier_nx_with_oak(),
            ModelZoo::standard(),
            ResponseModel::new(17),
        );
        characterize(&engine, &CharacterizationDataset::generate(samples, 23))
    }

    /// Hand-built samples where two models always land in fixed bins,
    /// making graph structure easy to reason about.
    fn synthetic_samples() -> Vec<SampleObservation> {
        let mut samples = Vec::new();
        for i in 0..50 {
            let mut per_model = BTreeMap::new();
            per_model.insert(
                ModelId::YoloV7,
                ModelObservation {
                    confidence: 0.85,
                    iou: 0.7,
                    detected: true,
                },
            );
            per_model.insert(
                ModelId::SsdMobilenetV1,
                ModelObservation {
                    confidence: 0.55,
                    iou: 0.45,
                    detected: true,
                },
            );
            samples.push(SampleObservation {
                frame_index: i,
                per_model,
            });
        }
        samples
    }

    #[test]
    fn synthetic_graph_structure() {
        let graph = ConfidenceGraph::build(&synthetic_samples(), GraphConfig::paper_defaults());
        assert_eq!(graph.node_count(), 2);
        assert_eq!(graph.edge_count(), 1);
        assert_eq!(graph.models().len(), 2);
    }

    #[test]
    fn synthetic_graph_predicts_cross_model_accuracy() {
        let graph = ConfidenceGraph::build(&synthetic_samples(), GraphConfig::paper_defaults());
        let predictions = graph.predict(ModelId::YoloV7, 0.85);
        assert_eq!(predictions.len(), 2);
        let yolo = predictions
            .iter()
            .find(|p| p.model == ModelId::YoloV7)
            .unwrap();
        let ssd = predictions
            .iter()
            .find(|p| p.model == ModelId::SsdMobilenetV1)
            .unwrap();
        assert!((yolo.accuracy - 0.7).abs() < 1e-9);
        assert!((ssd.accuracy - 0.45).abs() < 1e-9);
        assert_eq!(yolo.distance, 0.0);
        assert!(ssd.distance > 0.0);
    }

    #[test]
    fn nearest_bin_fallback_is_used_for_unseen_confidences() {
        let graph = ConfidenceGraph::build(&synthetic_samples(), GraphConfig::paper_defaults());
        // 0.15 was never observed for YoloV7; the 0.8-0.9 node is the nearest.
        let predictions = graph.predict(ModelId::YoloV7, 0.15);
        assert!(!predictions.is_empty());
    }

    #[test]
    fn unknown_model_returns_empty_predictions() {
        let graph = ConfidenceGraph::build(&synthetic_samples(), GraphConfig::paper_defaults());
        assert!(graph.predict(ModelId::YoloV7E6E, 0.9).is_empty());
    }

    #[test]
    fn empty_samples_build_an_empty_graph() {
        let graph = ConfidenceGraph::build(&[], GraphConfig::paper_defaults());
        assert_eq!(graph.node_count(), 0);
        assert!(graph.predict(ModelId::YoloV7, 0.5).is_empty());
    }

    #[test]
    fn zero_threshold_limits_predictions_to_the_source_model() {
        let config = GraphConfig::paper_defaults().with_distance_threshold(0.0);
        let graph = ConfidenceGraph::build(&synthetic_samples(), config);
        let predictions = graph.predict(ModelId::YoloV7, 0.85);
        assert_eq!(predictions.len(), 1);
        assert_eq!(predictions[0].model, ModelId::YoloV7);
    }

    #[test]
    fn larger_threshold_reaches_more_models() {
        let characterization = real_characterization(200);
        let narrow = ConfidenceGraph::build(
            &characterization.samples,
            GraphConfig::paper_defaults().with_distance_threshold(0.05),
        );
        let wide = ConfidenceGraph::build(
            &characterization.samples,
            GraphConfig::paper_defaults().with_distance_threshold(1.5),
        );
        let narrow_count = narrow.predict(ModelId::YoloV7, 0.9).len();
        let wide_count = wide.predict(ModelId::YoloV7, 0.9).len();
        assert!(
            wide_count >= narrow_count,
            "wider threshold should never reach fewer models ({wide_count} vs {narrow_count})"
        );
        assert!(wide_count >= 6, "wide graph should span most of the zoo");
    }

    #[test]
    fn predictions_are_bounded_and_cover_models() {
        let characterization = real_characterization(250);
        let graph =
            ConfidenceGraph::build(&characterization.samples, GraphConfig::paper_defaults());
        for confidence in [0.1, 0.3, 0.5, 0.7, 0.9] {
            for model in [ModelId::YoloV7, ModelId::SsdMobilenetV1] {
                for p in graph.predict(model, confidence) {
                    assert!((0.0..=1.0).contains(&p.accuracy));
                    assert!(p.distance >= 0.0);
                }
            }
        }
    }

    #[test]
    fn high_confidence_predicts_higher_accuracy_than_low_confidence() {
        let characterization = real_characterization(400);
        let graph =
            ConfidenceGraph::build(&characterization.samples, GraphConfig::paper_defaults());
        let high = graph
            .predict(ModelId::YoloV7, 0.9)
            .iter()
            .find(|p| p.model == ModelId::YoloV7)
            .map(|p| p.accuracy)
            .unwrap_or(0.0);
        let low = graph
            .predict(ModelId::YoloV7, 0.2)
            .iter()
            .find(|p| p.model == ModelId::YoloV7)
            .map(|p| p.accuracy)
            .unwrap_or(0.0);
        assert!(
            high > low,
            "confidence 0.9 should predict more accuracy than 0.2 ({high} vs {low})"
        );
    }

    #[test]
    fn graph_prediction_correlates_with_actual_cross_model_accuracy() {
        // The point of the confidence graph: given YoloV7's confidence, the
        // predicted accuracy of SSD MobilenetV1 should track its actual IoU.
        let characterization = real_characterization(400);
        let graph =
            ConfidenceGraph::build(&characterization.samples, GraphConfig::paper_defaults());
        let mut pairs = Vec::new();
        for sample in &characterization.samples {
            let (Some(yolo), Some(ssd)) = (
                sample.per_model.get(&ModelId::YoloV7),
                sample.per_model.get(&ModelId::SsdMobilenetV1),
            ) else {
                continue;
            };
            if !yolo.detected {
                continue;
            }
            let predicted = graph
                .predict(ModelId::YoloV7, yolo.confidence)
                .iter()
                .find(|p| p.model == ModelId::SsdMobilenetV1)
                .map(|p| p.accuracy);
            if let Some(predicted) = predicted {
                pairs.push((predicted, ssd.iou));
            }
        }
        assert!(pairs.len() > 100);
        let n = pairs.len() as f64;
        let mx = pairs.iter().map(|p| p.0).sum::<f64>() / n;
        let my = pairs.iter().map(|p| p.1).sum::<f64>() / n;
        let num: f64 = pairs.iter().map(|(x, y)| (x - mx) * (y - my)).sum();
        let dx: f64 = pairs.iter().map(|(x, _)| (x - mx).powi(2)).sum();
        let dy: f64 = pairs.iter().map(|(_, y)| (y - my).powi(2)).sum();
        let corr = num / (dx.sqrt() * dy.sqrt()).max(1e-12);
        assert!(
            corr > 0.3,
            "cross-model prediction should correlate with reality, got {corr}"
        );
    }

    #[test]
    fn config_builders() {
        let c = GraphConfig::paper_defaults()
            .with_bin_width(0.2)
            .with_distance_threshold(0.7);
        assert_eq!(c.bin_width, 0.2);
        assert_eq!(c.distance_threshold, 0.7);
        assert_eq!(GraphConfig::default(), GraphConfig::paper_defaults());
    }
}
