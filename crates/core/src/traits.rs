//! Characterized model traits (paper §III-A, "ODM Trait Identification").
//!
//! For every object-detection model the characterization pass records the
//! five traits the paper enumerates: accuracy (IoU), confidence behaviour,
//! latency, energy, and model-loading cost — the latter three per
//! accelerator.

use serde::{Deserialize, Serialize};
use shift_models::ModelId;
use shift_soc::AcceleratorId;
use std::collections::BTreeMap;

/// Latency / power / energy statistics of one model on one accelerator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AcceleratorStats {
    /// Mean single-frame inference latency, seconds.
    pub mean_latency_s: f64,
    /// Mean power draw during inference, watts.
    pub mean_power_w: f64,
    /// Mean energy per inference, joules.
    pub mean_energy_j: f64,
}

impl AcceleratorStats {
    /// Creates a stats record.
    pub fn new(mean_latency_s: f64, mean_power_w: f64, mean_energy_j: f64) -> Self {
        Self {
            mean_latency_s,
            mean_power_w,
            mean_energy_j,
        }
    }
}

/// The characterized traits of one object-detection model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelTraits {
    /// The model.
    pub model: ModelId,
    /// Mean IoU over the characterization dataset.
    pub mean_iou: f64,
    /// Fraction of characterization frames with IoU >= 0.5.
    pub success_rate: f64,
    /// Mean reported confidence over frames where the model detected
    /// something.
    pub mean_confidence: f64,
    /// Per-accelerator latency / power / energy statistics. Accelerators the
    /// model cannot run on are absent.
    pub per_accelerator: BTreeMap<AcceleratorId, AcceleratorStats>,
    /// Resident memory footprint, MB.
    pub memory_mb: f64,
    /// Model load time per accelerator, seconds.
    pub load_time_s: BTreeMap<AcceleratorId, f64>,
    /// Model load energy per accelerator, joules.
    pub load_energy_j: BTreeMap<AcceleratorId, f64>,
}

impl ModelTraits {
    /// Stats of the model on `accelerator`, if supported.
    pub fn stats_on(&self, accelerator: AcceleratorId) -> Option<AcceleratorStats> {
        self.per_accelerator.get(&accelerator).copied()
    }

    /// Accelerators this model was characterized on.
    pub fn accelerators(&self) -> Vec<AcceleratorId> {
        self.per_accelerator.keys().copied().collect()
    }

    /// The most energy-efficient accelerator for this model, if any.
    pub fn most_efficient_accelerator(&self) -> Option<AcceleratorId> {
        self.per_accelerator
            .iter()
            .min_by(|a, b| {
                a.1.mean_energy_j
                    .partial_cmp(&b.1.mean_energy_j)
                    .expect("energy values are finite")
            })
            .map(|(id, _)| *id)
    }

    /// The lowest-latency accelerator for this model, if any.
    pub fn fastest_accelerator(&self) -> Option<AcceleratorId> {
        self.per_accelerator
            .iter()
            .min_by(|a, b| {
                a.1.mean_latency_s
                    .partial_cmp(&b.1.mean_latency_s)
                    .expect("latency values are finite")
            })
            .map(|(id, _)| *id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_traits() -> ModelTraits {
        let mut per_accelerator = BTreeMap::new();
        per_accelerator.insert(AcceleratorId::Gpu, AcceleratorStats::new(0.13, 15.1, 1.97));
        per_accelerator.insert(AcceleratorId::Dla0, AcceleratorStats::new(0.12, 5.6, 0.66));
        ModelTraits {
            model: ModelId::YoloV7,
            mean_iou: 0.62,
            success_rate: 0.74,
            mean_confidence: 0.8,
            per_accelerator,
            memory_mb: 280.0,
            load_time_s: BTreeMap::new(),
            load_energy_j: BTreeMap::new(),
        }
    }

    #[test]
    fn stats_lookup() {
        let t = sample_traits();
        assert!(t.stats_on(AcceleratorId::Gpu).is_some());
        assert!(t.stats_on(AcceleratorId::OakD).is_none());
        assert_eq!(t.accelerators().len(), 2);
    }

    #[test]
    fn best_accelerator_selection() {
        let t = sample_traits();
        assert_eq!(t.most_efficient_accelerator(), Some(AcceleratorId::Dla0));
        assert_eq!(t.fastest_accelerator(), Some(AcceleratorId::Dla0));
    }

    #[test]
    fn empty_traits_have_no_best_accelerator() {
        let mut t = sample_traits();
        t.per_accelerator.clear();
        assert_eq!(t.most_efficient_accelerator(), None);
        assert_eq!(t.fastest_accelerator(), None);
    }
}
