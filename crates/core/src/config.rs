//! SHIFT runtime configuration: knobs, goals and thresholds.

use crate::graph::GraphConfig;
use serde::{Deserialize, Serialize};
use shift_soc::AcceleratorId;

/// The three tunable scheduler knobs of Algorithm 1: the weights applied to
/// predicted accuracy, normalized (inverted) energy and normalized (inverted)
/// latency when scoring candidate models.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Knobs {
    /// Weight of the accuracy prediction (W\[0\] in Algorithm 1).
    pub accuracy: f64,
    /// Weight of the inverted energy trait (W\[1\]).
    pub energy: f64,
    /// Weight of the inverted latency trait (W\[2\]).
    pub latency: f64,
}

impl Knobs {
    /// The knob setting used for the paper's main results (Table III):
    /// accuracy 1.0, energy 0.5, latency 0.5.
    pub fn paper_defaults() -> Self {
        Self {
            accuracy: 1.0,
            energy: 0.5,
            latency: 0.5,
        }
    }

    /// A knob setting that prioritizes energy savings.
    pub fn energy_saver() -> Self {
        Self {
            accuracy: 0.5,
            energy: 1.0,
            latency: 0.25,
        }
    }

    /// A knob setting that prioritizes latency.
    pub fn low_latency() -> Self {
        Self {
            accuracy: 0.5,
            energy: 0.25,
            latency: 1.0,
        }
    }

    /// A knob setting that prioritizes accuracy above everything else.
    pub fn accuracy_first() -> Self {
        Self {
            accuracy: 1.0,
            energy: 0.1,
            latency: 0.1,
        }
    }

    /// Creates a knob setting, clamping negative weights to zero.
    pub fn new(accuracy: f64, energy: f64, latency: f64) -> Self {
        Self {
            accuracy: accuracy.max(0.0),
            energy: energy.max(0.0),
            latency: latency.max(0.0),
        }
    }
}

impl Default for Knobs {
    fn default() -> Self {
        Self::paper_defaults()
    }
}

/// Complete SHIFT configuration.
///
/// The defaults reproduce the parameters listed under Table III of the paper:
/// goal accuracy 0.25, momentum 30, distance threshold 0.5, knobs
/// (accuracy 1.0, energy 0.5, latency 0.5).
///
/// ```
/// use shift_core::ShiftConfig;
///
/// let config = ShiftConfig::paper_defaults()
///     .with_accuracy_goal(0.4)
///     .with_momentum(10);
/// assert_eq!(config.accuracy_goal, 0.4);
/// assert_eq!(config.momentum, 10);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShiftConfig {
    /// Desired accuracy threshold. Also gates the "keep the current model"
    /// shortcut: when `similarity x confidence >= accuracy_goal` no
    /// re-scheduling happens.
    pub accuracy_goal: f64,
    /// Number of recent accuracy predictions averaged per model (the paper's
    /// *momentum* parameter).
    pub momentum: usize,
    /// Confidence-graph distance threshold.
    pub distance_threshold: f64,
    /// Scheduler knobs.
    pub knobs: Knobs,
    /// Confidence-bin width used when building the confidence graph.
    pub confidence_bin_width: f64,
    /// Accelerators the scheduler may target. The paper's 18 schedulable
    /// pairs exclude the CPU (its latency is prohibitive for continuous OD),
    /// so the default set is GPU, both DLAs and the OAK-D.
    pub allowed_accelerators: Vec<AcceleratorId>,
    /// Relative score margin a challenger pair must exceed the currently
    /// running pair by before a swap is committed. Algorithm 1 in the paper
    /// returns the plain arg-max; the margin adds hysteresis so that two
    /// pairs with near-identical scores (common while no target is visible)
    /// do not cause the runtime to thrash between models every frame. Set to
    /// `0.0` to reproduce the un-dampened arg-max exactly.
    pub switch_margin: f64,
    /// Modeled per-frame scheduler overhead, seconds. The paper reports the
    /// scheduler "maintains an overhead of less than 2 milliseconds per
    /// frame"; the default charges 1.5 ms to every frame.
    pub scheduler_overhead_s: f64,
    /// Power drawn by the CPU while the scheduler runs, watts (used to charge
    /// the energy cost of the overhead).
    pub scheduler_power_w: f64,
}

impl ShiftConfig {
    /// The configuration used for the paper's main results.
    pub fn paper_defaults() -> Self {
        Self {
            accuracy_goal: 0.25,
            momentum: 30,
            distance_threshold: 0.5,
            knobs: Knobs::paper_defaults(),
            confidence_bin_width: 0.1,
            allowed_accelerators: vec![
                AcceleratorId::Gpu,
                AcceleratorId::Dla0,
                AcceleratorId::Dla1,
                AcceleratorId::OakD,
            ],
            switch_margin: 0.05,
            scheduler_overhead_s: 0.0015,
            scheduler_power_w: 5.0,
        }
    }

    /// Returns a copy with a different switch-hysteresis margin.
    pub fn with_switch_margin(mut self, switch_margin: f64) -> Self {
        self.switch_margin = switch_margin.max(0.0);
        self
    }

    /// Returns a copy with a different accuracy goal.
    pub fn with_accuracy_goal(mut self, accuracy_goal: f64) -> Self {
        self.accuracy_goal = accuracy_goal.clamp(0.0, 1.0);
        self
    }

    /// Returns a copy with a different momentum.
    pub fn with_momentum(mut self, momentum: usize) -> Self {
        self.momentum = momentum.max(1);
        self
    }

    /// Returns a copy with a different distance threshold.
    pub fn with_distance_threshold(mut self, distance_threshold: f64) -> Self {
        self.distance_threshold = distance_threshold.max(0.0);
        self
    }

    /// Returns a copy with different knobs.
    pub fn with_knobs(mut self, knobs: Knobs) -> Self {
        self.knobs = knobs;
        self
    }

    /// Returns a copy restricted to the given accelerators.
    pub fn with_allowed_accelerators(mut self, accelerators: Vec<AcceleratorId>) -> Self {
        self.allowed_accelerators = accelerators;
        self
    }

    /// The graph-construction parameters implied by this configuration.
    pub fn graph_config(&self) -> GraphConfig {
        GraphConfig::paper_defaults()
            .with_bin_width(self.confidence_bin_width)
            .with_distance_threshold(self.distance_threshold)
    }

    /// Energy charged per frame for running the scheduler itself, joules.
    pub fn scheduler_overhead_energy_j(&self) -> f64 {
        self.scheduler_overhead_s * self.scheduler_power_w
    }
}

impl Default for ShiftConfig {
    fn default() -> Self {
        Self::paper_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_table_iii_caption() {
        let c = ShiftConfig::paper_defaults();
        assert_eq!(c.accuracy_goal, 0.25);
        assert_eq!(c.momentum, 30);
        assert_eq!(c.distance_threshold, 0.5);
        assert_eq!(c.knobs.accuracy, 1.0);
        assert_eq!(c.knobs.energy, 0.5);
        assert_eq!(c.knobs.latency, 0.5);
        assert!(c.scheduler_overhead_s < 0.002, "overhead must stay < 2 ms");
        assert!(!c.allowed_accelerators.contains(&AcceleratorId::Cpu));
    }

    #[test]
    fn builders_clamp_and_override() {
        let c = ShiftConfig::paper_defaults()
            .with_accuracy_goal(2.0)
            .with_momentum(0)
            .with_distance_threshold(-1.0)
            .with_knobs(Knobs::new(-1.0, 2.0, 3.0));
        assert_eq!(c.accuracy_goal, 1.0);
        assert_eq!(c.momentum, 1);
        assert_eq!(c.distance_threshold, 0.0);
        assert_eq!(c.knobs.accuracy, 0.0);
    }

    #[test]
    fn graph_config_inherits_threshold_and_bins() {
        let c = ShiftConfig::paper_defaults().with_distance_threshold(0.8);
        let g = c.graph_config();
        assert_eq!(g.distance_threshold, 0.8);
        assert_eq!(g.bin_width, 0.1);
    }

    #[test]
    fn overhead_energy_is_time_times_power() {
        let c = ShiftConfig::paper_defaults();
        assert!(
            (c.scheduler_overhead_energy_j() - c.scheduler_overhead_s * c.scheduler_power_w).abs()
                < 1e-12
        );
    }

    #[test]
    fn knob_presets_differ() {
        assert_ne!(Knobs::energy_saver(), Knobs::low_latency());
        assert_eq!(Knobs::default(), Knobs::paper_defaults());
        let e = Knobs::energy_saver();
        assert!(e.energy > e.latency);
        let l = Knobs::low_latency();
        assert!(l.latency > l.energy);
        let a = Knobs::accuracy_first();
        assert!(a.accuracy > a.energy && a.accuracy > a.latency);
    }

    #[test]
    fn restricted_accelerators() {
        let c = ShiftConfig::paper_defaults()
            .with_allowed_accelerators(vec![AcceleratorId::Gpu, AcceleratorId::Dla0]);
        assert_eq!(c.allowed_accelerators.len(), 2);
    }
}
