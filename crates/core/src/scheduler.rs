//! The SHIFT scheduling heuristic (paper Algorithm 1).
//!
//! Per frame the scheduler receives the currently running model, its reported
//! confidence and the frame-similarity score from the context detector. If
//! `similarity x confidence` still meets the accuracy goal the current model
//! is kept (no re-scheduling, no swap cost). Otherwise the confidence graph
//! converts the current confidence into accuracy predictions for every model,
//! those predictions are smoothed over a momentum window, filtered by the
//! accuracy goal, and every candidate (model, accelerator) pair is scored as
//!
//! ```text
//! score = accuracy * W_acc + inverted_energy * W_energy + inverted_latency * W_lat
//! ```
//!
//! with energy and latency normalized to `[0, 1]` over all candidate pairs
//! and inverted so that bigger is better. The arg-max pair wins.

use crate::characterize::Characterization;
use crate::config::ShiftConfig;
use crate::graph::ConfidenceGraph;
use serde::{Deserialize, Serialize};
use shift_models::ModelId;
use shift_soc::AcceleratorId;
use std::collections::{BTreeMap, VecDeque};

/// A schedulable (model, accelerator) pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CandidatePair {
    /// The object-detection model.
    pub model: ModelId,
    /// The accelerator it would execute on.
    pub accelerator: AcceleratorId,
}

impl CandidatePair {
    /// Creates a pair.
    pub fn new(model: ModelId, accelerator: AcceleratorId) -> Self {
        Self { model, accelerator }
    }
}

impl std::fmt::Display for CandidatePair {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} on {}", self.model, self.accelerator)
    }
}

/// The outcome of one scheduling decision.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Decision {
    /// The pair chosen for the next inference.
    pub pair: CandidatePair,
    /// Whether a full re-scheduling pass ran (`false` when the similarity
    /// gate kept the current model).
    pub rescheduled: bool,
    /// The similarity score that drove the decision.
    pub similarity: f64,
    /// Scores of every candidate pair from the last re-scheduling pass
    /// (empty when the gate short-circuited).
    pub scores: Vec<(CandidatePair, f64)>,
}

impl Decision {
    /// The fallback order a driver degrades along when the decided pair is
    /// unusable (offline or memory-blocked): every scored candidate from
    /// best to worst (ties broken on the pair ordering so the walk is
    /// deterministic), then `incumbent`, with the decided pair and
    /// duplicates removed. Both the single-stream runtime and the fleet walk
    /// exactly this order, so their degradation behaviour cannot diverge.
    pub fn fallback_candidates(&self, incumbent: CandidatePair) -> Vec<CandidatePair> {
        let mut scored = self.scores.clone();
        scored.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("scores are finite")
                .then(a.0.cmp(&b.0))
        });
        let mut candidates: Vec<CandidatePair> = scored.iter().map(|&(pair, _)| pair).collect();
        candidates.push(incumbent);
        let mut seen = vec![self.pair];
        candidates.retain(|pair| {
            let fresh = !seen.contains(pair);
            seen.push(*pair);
            fresh
        });
        candidates
    }
}

/// The SHIFT scheduler: owns the confidence graph, the normalized
/// energy/latency traits and the per-model momentum buffers.
#[derive(Debug, Clone)]
pub struct Scheduler {
    config: ShiftConfig,
    graph: ConfidenceGraph,
    pairs: Vec<CandidatePair>,
    /// Normalized, inverted energy score per pair (1 = most efficient).
    energy_score: BTreeMap<CandidatePair, f64>,
    /// Normalized, inverted latency score per pair (1 = fastest).
    latency_score: BTreeMap<CandidatePair, f64>,
    /// Fallback accuracy per model (characterized mean IoU), used before the
    /// momentum buffer has any graph predictions.
    fallback_accuracy: BTreeMap<ModelId, f64>,
    /// Momentum buffers of recent accuracy predictions per model.
    buffers: BTreeMap<ModelId, VecDeque<f64>>,
    /// Count of full re-scheduling passes performed.
    reschedule_count: u64,
}

impl Scheduler {
    /// Builds a scheduler from a characterization and a pre-built confidence
    /// graph.
    ///
    /// # Errors
    ///
    /// Returns [`crate::ShiftError::NoCandidatePairs`] when no characterized
    /// model can execute on any allowed accelerator.
    pub fn new(
        config: ShiftConfig,
        characterization: &Characterization,
        graph: ConfidenceGraph,
    ) -> Result<Self, crate::ShiftError> {
        let mut pairs = Vec::new();
        let mut energy_raw = BTreeMap::new();
        let mut latency_raw = BTreeMap::new();
        let mut fallback_accuracy = BTreeMap::new();
        for (model, traits) in &characterization.traits {
            fallback_accuracy.insert(*model, traits.mean_iou);
            for &accelerator in &config.allowed_accelerators {
                if let Some(stats) = traits.stats_on(accelerator) {
                    let pair = CandidatePair::new(*model, accelerator);
                    pairs.push(pair);
                    energy_raw.insert(pair, stats.mean_energy_j);
                    latency_raw.insert(pair, stats.mean_latency_s);
                }
            }
        }
        if pairs.is_empty() {
            return Err(crate::ShiftError::NoCandidatePairs);
        }
        let energy_score = normalize_inverted(&energy_raw);
        let latency_score = normalize_inverted(&latency_raw);
        Ok(Self {
            config,
            graph,
            pairs,
            energy_score,
            latency_score,
            fallback_accuracy,
            buffers: BTreeMap::new(),
            reschedule_count: 0,
        })
    }

    /// The configuration the scheduler was built with.
    pub fn config(&self) -> &ShiftConfig {
        &self.config
    }

    /// The schedulable pairs.
    pub fn candidate_pairs(&self) -> &[CandidatePair] {
        &self.pairs
    }

    /// The confidence graph in use.
    pub fn graph(&self) -> &ConfidenceGraph {
        &self.graph
    }

    /// Number of full re-scheduling passes performed so far.
    pub fn reschedule_count(&self) -> u64 {
        self.reschedule_count
    }

    /// Normalized, inverted energy score of `pair` in `[0, 1]` (1 marks the
    /// most efficient candidate), or `None` for a pair outside the candidate
    /// set.
    pub fn energy_score_of(&self, pair: CandidatePair) -> Option<f64> {
        self.energy_score.get(&pair).copied()
    }

    /// Normalized, inverted latency score of `pair` in `[0, 1]` (1 marks the
    /// fastest candidate), or `None` for a pair outside the candidate set.
    pub fn latency_score_of(&self, pair: CandidatePair) -> Option<f64> {
        self.latency_score.get(&pair).copied()
    }

    /// The characterized reference accuracy (mean IoU) of `model`: the value
    /// the scheduler falls back to when the confidence graph reaches no
    /// prediction for the model within the distance threshold.
    pub fn reference_accuracy(&self, model: ModelId) -> Option<f64> {
        self.fallback_accuracy.get(&model).copied()
    }

    /// A reasonable initial pair: the most accurate model, placed on its most
    /// energy-efficient allowed accelerator (mirrors a deployment that starts
    /// from the strongest detector before any context is known).
    pub fn initial_pair(&self) -> CandidatePair {
        let mut best: Option<(f64, CandidatePair)> = None;
        for pair in &self.pairs {
            let accuracy = self
                .fallback_accuracy
                .get(&pair.model)
                .copied()
                .unwrap_or(0.0);
            let efficiency = self.energy_score.get(pair).copied().unwrap_or(0.0);
            let key = accuracy + 1e-3 * efficiency;
            if best.is_none_or(|(k, _)| key > k) {
                best = Some((key, *pair));
            }
        }
        best.expect("constructor guarantees at least one pair").1
    }

    /// Runs Algorithm 1 for one frame.
    ///
    /// * `current` — the pair that produced the latest detection.
    /// * `confidence` — the confidence it reported (0 when nothing was
    ///   detected).
    /// * `similarity` — the context detector's `min(NCC_image, NCC_bbox)`.
    pub fn schedule(
        &mut self,
        current: CandidatePair,
        confidence: f64,
        similarity: f64,
    ) -> Decision {
        // Line 3-5: keep the current model while the context is stable and
        // the model is confident.
        if similarity * confidence >= self.config.accuracy_goal {
            return Decision {
                pair: current,
                rescheduled: false,
                similarity,
                scores: Vec::new(),
            };
        }
        self.force_reschedule(current, confidence, similarity)
    }

    /// Runs the full re-scheduling pass of Algorithm 1 unconditionally,
    /// bypassing the similarity gate: confidence-graph lookup, momentum
    /// update, accuracy-goal filter and the arg-max over all candidate
    /// pairs. This is the decision path behind the paper's "< 2 ms per
    /// frame" overhead claim, exposed separately so the perf-regression
    /// suite can benchmark it without constructing gate-defeating inputs.
    pub fn force_reschedule(
        &mut self,
        current: CandidatePair,
        confidence: f64,
        similarity: f64,
    ) -> Decision {
        self.reschedule_count += 1;

        // Line 9: predict accuracies for every model from the current model's
        // confidence via the confidence graph.
        let predictions = self.graph.predict(current.model, confidence);

        // Lines 11-14: push predictions into the momentum buffers and average.
        for prediction in &predictions {
            let buffer = self.buffers.entry(prediction.model).or_default();
            buffer.push_back(prediction.accuracy);
            while buffer.len() > self.config.momentum {
                buffer.pop_front();
            }
        }
        let mut averaged: BTreeMap<ModelId, f64> = BTreeMap::new();
        for (&model, fallback) in &self.fallback_accuracy {
            let value = match self.buffers.get(&model) {
                Some(buffer) if !buffer.is_empty() => {
                    buffer.iter().sum::<f64>() / buffer.len() as f64
                }
                _ => *fallback,
            };
            averaged.insert(model, value);
        }

        // Lines 15-18: keep models meeting the accuracy goal; if none do,
        // consider every model.
        let mut valid: Vec<ModelId> = averaged
            .iter()
            .filter(|(_, &a)| a >= self.config.accuracy_goal)
            .map(|(&m, _)| m)
            .collect();
        if valid.is_empty() {
            valid = averaged.keys().copied().collect();
        }

        // Lines 19-23: score candidate pairs and take the maximum.
        let knobs = self.config.knobs;
        let mut scores: Vec<(CandidatePair, f64)> = Vec::new();
        for pair in &self.pairs {
            if !valid.contains(&pair.model) {
                continue;
            }
            let accuracy = averaged.get(&pair.model).copied().unwrap_or(0.0);
            let energy = self.energy_score.get(pair).copied().unwrap_or(0.0);
            let latency = self.latency_score.get(pair).copied().unwrap_or(0.0);
            let score = accuracy * knobs.accuracy + energy * knobs.energy + latency * knobs.latency;
            scores.push((*pair, score));
        }
        let best = scores
            .iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("scores are finite"))
            .copied()
            .unwrap_or((current, 0.0));
        // Hysteresis: keep the incumbent unless the challenger clearly wins.
        let current_score = scores
            .iter()
            .find(|(pair, _)| *pair == current)
            .map(|(_, score)| *score);
        let pair = match current_score {
            Some(incumbent)
                if best.0 != current && best.1 <= incumbent * (1.0 + self.config.switch_margin) =>
            {
                current
            }
            _ => best.0,
        };
        Decision {
            pair,
            rescheduled: true,
            similarity,
            scores,
        }
    }

    /// Clears the momentum buffers (used between scenario runs so history
    /// from one video does not leak into the next).
    pub fn reset_buffers(&mut self) {
        self.buffers.clear();
    }
}

/// Normalizes raw (smaller-is-better) values to `[0, 1]` and inverts them so
/// `1.0` marks the cheapest entry, as required by the scheduler's
/// bigger-is-better maximum search. A degenerate range maps everything to 1.
fn normalize_inverted(raw: &BTreeMap<CandidatePair, f64>) -> BTreeMap<CandidatePair, f64> {
    let min = raw.values().copied().fold(f64::INFINITY, f64::min);
    let max = raw.values().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = max - min;
    raw.iter()
        .map(|(&pair, &value)| {
            let normalized = if span <= f64::EPSILON {
                1.0
            } else {
                1.0 - (value - min) / span
            };
            (pair, normalized)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::characterize::characterize;
    use crate::graph::GraphConfig;
    use shift_models::{ModelZoo, ResponseModel};
    use shift_soc::{ExecutionEngine, Platform};
    use shift_video::CharacterizationDataset;

    fn build_scheduler(config: ShiftConfig) -> Scheduler {
        let engine = ExecutionEngine::new(
            Platform::xavier_nx_with_oak(),
            ModelZoo::standard(),
            ResponseModel::new(4),
        );
        let characterization = characterize(&engine, &CharacterizationDataset::generate(200, 8));
        let graph = ConfidenceGraph::build(
            &characterization.samples,
            GraphConfig::paper_defaults().with_distance_threshold(config.distance_threshold),
        );
        Scheduler::new(config, &characterization, graph).expect("scheduler builds")
    }

    #[test]
    fn candidate_pairs_exclude_cpu_by_default() {
        let scheduler = build_scheduler(ShiftConfig::paper_defaults());
        assert!(scheduler
            .candidate_pairs()
            .iter()
            .all(|p| p.accelerator != AcceleratorId::Cpu));
        // 8 models x (GPU + DLA0 + DLA1) + 2 x OAK-D = 26 instance-level pairs.
        assert_eq!(scheduler.candidate_pairs().len(), 26);
    }

    #[test]
    fn similarity_gate_keeps_the_current_pair() {
        let mut scheduler = build_scheduler(ShiftConfig::paper_defaults());
        let current = CandidatePair::new(ModelId::YoloV7, AcceleratorId::Gpu);
        let decision = scheduler.schedule(current, 0.9, 0.95);
        assert_eq!(decision.pair, current);
        assert!(!decision.rescheduled);
        assert!(decision.scores.is_empty());
        assert_eq!(scheduler.reschedule_count(), 0);
    }

    #[test]
    fn low_similarity_triggers_rescheduling() {
        let mut scheduler = build_scheduler(ShiftConfig::paper_defaults());
        let current = CandidatePair::new(ModelId::YoloV7, AcceleratorId::Gpu);
        let decision = scheduler.schedule(current, 0.9, 0.1);
        assert!(decision.rescheduled);
        assert!(!decision.scores.is_empty());
        assert_eq!(scheduler.reschedule_count(), 1);
    }

    #[test]
    fn force_reschedule_bypasses_the_similarity_gate() {
        let mut scheduler = build_scheduler(ShiftConfig::paper_defaults());
        let current = CandidatePair::new(ModelId::YoloV7, AcceleratorId::Gpu);
        // These inputs pass the gate in `schedule` (0.9 * 0.95 >= goal)...
        let gated = scheduler.schedule(current, 0.9, 0.95);
        assert!(!gated.rescheduled);
        // ...but `force_reschedule` runs the full arg-max pass anyway.
        let forced = scheduler.force_reschedule(current, 0.9, 0.95);
        assert!(forced.rescheduled);
        assert!(!forced.scores.is_empty());
        assert_eq!(scheduler.reschedule_count(), 1);
    }

    #[test]
    fn zero_confidence_always_reschedules() {
        let mut scheduler = build_scheduler(ShiftConfig::paper_defaults());
        let current = CandidatePair::new(ModelId::YoloV7Tiny, AcceleratorId::OakD);
        let decision = scheduler.schedule(current, 0.0, 1.0);
        assert!(decision.rescheduled);
    }

    #[test]
    fn energy_knob_pushes_choices_toward_efficient_pairs() {
        use crate::config::Knobs;
        let energy_cfg = ShiftConfig::paper_defaults().with_knobs(Knobs::new(0.1, 3.0, 0.0));
        let accuracy_cfg = ShiftConfig::paper_defaults().with_knobs(Knobs::new(3.0, 0.0, 0.0));
        let mut energy_sched = build_scheduler(energy_cfg);
        let mut accuracy_sched = build_scheduler(accuracy_cfg);
        let current = CandidatePair::new(ModelId::YoloV7, AcceleratorId::Gpu);
        // Force a re-schedule with a high confidence (hard context unknown).
        let energy_pick = energy_sched.schedule(current, 0.8, 0.0);
        let accuracy_pick = accuracy_sched.schedule(current, 0.8, 0.0);
        let energy_of =
            |pair: &CandidatePair, s: &Scheduler| s.energy_score.get(pair).copied().unwrap_or(0.0);
        assert!(
            energy_of(&energy_pick.pair, &energy_sched)
                >= energy_of(&accuracy_pick.pair, &accuracy_sched),
            "energy-weighted scheduler should pick at least as efficient a pair"
        );
    }

    #[test]
    fn accuracy_first_knobs_pick_a_strong_model_when_context_is_hard() {
        let config = ShiftConfig::paper_defaults()
            .with_knobs(crate::config::Knobs::accuracy_first())
            .with_accuracy_goal(0.5);
        let mut scheduler = build_scheduler(config);
        let current = CandidatePair::new(ModelId::SsdMobilenetV2Small, AcceleratorId::Gpu);
        // Low confidence from the small model on a changed scene.
        let decision = scheduler.schedule(current, 0.35, 0.1);
        assert!(decision.rescheduled);
        let chosen = decision.pair.model;
        let strong_families = [
            ModelId::YoloV7,
            ModelId::YoloV7X,
            ModelId::YoloV7E6E,
            ModelId::YoloV7Tiny,
        ];
        assert!(
            strong_families.contains(&chosen),
            "accuracy-first scheduling should escalate to a YoloV7 variant, got {chosen}"
        );
    }

    #[test]
    fn momentum_buffer_is_bounded() {
        let config = ShiftConfig::paper_defaults().with_momentum(5);
        let mut scheduler = build_scheduler(config);
        let current = CandidatePair::new(ModelId::YoloV7, AcceleratorId::Gpu);
        for _ in 0..50 {
            scheduler.schedule(current, 0.6, 0.0);
        }
        for buffer in scheduler.buffers.values() {
            assert!(buffer.len() <= 5);
        }
        scheduler.reset_buffers();
        assert!(scheduler.buffers.is_empty());
    }

    #[test]
    fn initial_pair_is_an_accurate_model() {
        let scheduler = build_scheduler(ShiftConfig::paper_defaults());
        let pair = scheduler.initial_pair();
        assert_eq!(pair.model, ModelId::YoloV7, "highest characterized IoU");
    }

    #[test]
    fn no_candidate_pairs_is_an_error() {
        let engine = ExecutionEngine::new(
            Platform::xavier_nx_with_oak(),
            ModelZoo::standard(),
            ResponseModel::new(4),
        );
        let characterization = characterize(&engine, &CharacterizationDataset::generate(20, 8));
        let graph =
            ConfidenceGraph::build(&characterization.samples, GraphConfig::paper_defaults());
        let config = ShiftConfig::paper_defaults().with_allowed_accelerators(vec![]);
        let result = Scheduler::new(config, &characterization, graph);
        assert_eq!(result.err(), Some(crate::ShiftError::NoCandidatePairs));
    }

    #[test]
    fn normalization_inverts_ordering() {
        let mut raw = BTreeMap::new();
        let a = CandidatePair::new(ModelId::YoloV7, AcceleratorId::Gpu);
        let b = CandidatePair::new(ModelId::YoloV7Tiny, AcceleratorId::Gpu);
        raw.insert(a, 2.0);
        raw.insert(b, 0.5);
        let normalized = normalize_inverted(&raw);
        assert_eq!(normalized[&b], 1.0, "cheapest maps to 1");
        assert_eq!(normalized[&a], 0.0, "most expensive maps to 0");
    }

    #[test]
    fn degenerate_normalization_maps_to_one() {
        let mut raw = BTreeMap::new();
        let a = CandidatePair::new(ModelId::YoloV7, AcceleratorId::Gpu);
        raw.insert(a, 3.3);
        let normalized = normalize_inverted(&raw);
        assert_eq!(normalized[&a], 1.0);
    }

    #[test]
    fn decision_display_types() {
        let pair = CandidatePair::new(ModelId::YoloV7, AcceleratorId::Dla0);
        assert_eq!(pair.to_string(), "YoloV7 on DLA0");
    }
}
