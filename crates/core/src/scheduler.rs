//! The SHIFT scheduling heuristic (paper Algorithm 1).
//!
//! Per frame the scheduler receives the currently running model, its reported
//! confidence and the frame-similarity score from the context detector. If
//! `similarity x confidence` still meets the accuracy goal the current model
//! is kept (no re-scheduling, no swap cost). Otherwise the confidence graph
//! converts the current confidence into accuracy predictions for every model,
//! those predictions are smoothed over a momentum window, filtered by the
//! accuracy goal, and every candidate (model, accelerator) pair is scored as
//!
//! ```text
//! score = accuracy * W_acc + inverted_energy * W_energy + inverted_latency * W_lat
//! ```
//!
//! with energy and latency normalized to `[0, 1]` over all candidate pairs
//! and inverted so that bigger is better. The arg-max pair wins.

use crate::characterize::Characterization;
use crate::config::ShiftConfig;
use crate::graph::ConfidenceGraph;
use serde::{Deserialize, Serialize};
use shift_models::ModelId;
use shift_soc::AcceleratorId;
use std::collections::{BTreeMap, VecDeque};

/// A schedulable (model, accelerator) pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CandidatePair {
    /// The object-detection model.
    pub model: ModelId,
    /// The accelerator it would execute on.
    pub accelerator: AcceleratorId,
}

impl CandidatePair {
    /// Creates a pair.
    pub fn new(model: ModelId, accelerator: AcceleratorId) -> Self {
        Self { model, accelerator }
    }
}

impl std::fmt::Display for CandidatePair {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} on {}", self.model, self.accelerator)
    }
}

/// The outcome of one scheduling decision.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Decision {
    /// The pair chosen for the next inference.
    pub pair: CandidatePair,
    /// Whether a full re-scheduling pass ran (`false` when the similarity
    /// gate kept the current model).
    pub rescheduled: bool,
    /// The similarity score that drove the decision.
    pub similarity: f64,
    /// Scores of every candidate pair from the last re-scheduling pass
    /// (empty when the gate short-circuited).
    pub scores: Vec<(CandidatePair, f64)>,
}

impl Decision {
    /// The fallback order a driver degrades along when the decided pair is
    /// unusable (offline or memory-blocked): every scored candidate from
    /// best to worst (ties broken on the pair ordering so the walk is
    /// deterministic), then `incumbent`, with the decided pair and
    /// duplicates removed. Both the single-stream runtime and the fleet walk
    /// exactly this order, so their degradation behaviour cannot diverge.
    ///
    /// Runs on every degrade step of a fault walk, so it makes exactly one
    /// allocation: the returned vector, sorted and deduplicated in place.
    /// `scores` must list each pair at most once (as `force_reschedule`
    /// produces); the score lookup in the sort and the first-kept-wins dedup
    /// both rely on it.
    pub fn fallback_candidates(&self, incumbent: CandidatePair) -> Vec<CandidatePair> {
        debug_assert!(
            self.scores
                .iter()
                .enumerate()
                .all(|(i, (p, _))| self.scores[..i].iter().all(|(q, _)| q != p)),
            "Decision::scores must contain each pair at most once"
        );
        let score_of = |pair: &CandidatePair| -> f64 {
            self.scores
                .iter()
                .find(|(p, _)| p == pair)
                .map(|&(_, s)| s)
                .expect("pair came from scores")
        };
        let mut candidates: Vec<CandidatePair> = Vec::with_capacity(self.scores.len() + 1);
        candidates.extend(self.scores.iter().map(|&(pair, _)| pair));
        candidates.sort_by(|a, b| {
            score_of(b)
                .partial_cmp(&score_of(a))
                .expect("scores are finite")
                .then(a.cmp(b))
        });
        candidates.push(incumbent);
        let mut kept = 0;
        for i in 0..candidates.len() {
            let pair = candidates[i];
            if pair == self.pair || candidates[..kept].contains(&pair) {
                continue;
            }
            candidates[kept] = pair;
            kept += 1;
        }
        candidates.truncate(kept);
        candidates
    }
}

/// The SHIFT scheduler: owns the confidence graph, the normalized
/// energy/latency traits and the per-model momentum buffers.
///
/// All per-pair and per-model state lives in dense arrays indexed in lockstep
/// (`pairs[i]` executes `models[pair_model[i]]` with traits `energy_score[i]`
/// / `latency_score[i]`), so the per-frame Algorithm 1 pass is a single
/// allocation-free sweep with no map lookups.
#[derive(Debug, Clone)]
pub struct Scheduler {
    config: ShiftConfig,
    graph: ConfidenceGraph,
    pairs: Vec<CandidatePair>,
    /// Models in sorted order; all `*_model` indices point into this.
    models: Vec<ModelId>,
    /// Index into `models` of each pair's model, aligned with `pairs`.
    pair_model: Vec<usize>,
    /// Normalized, inverted energy score per pair (1 = most efficient),
    /// aligned with `pairs`.
    energy_score: Vec<f64>,
    /// Normalized, inverted latency score per pair (1 = fastest), aligned
    /// with `pairs`.
    latency_score: Vec<f64>,
    /// Whether a later same-model pair always scores at least as high, so the
    /// arg-max sweep can skip this one (see `dominated_pairs`). Aligned with
    /// `pairs`.
    pair_dominated: Vec<bool>,
    /// Fallback accuracy per model (characterized mean IoU), used before the
    /// momentum buffer has any graph predictions. Aligned with `models`.
    model_fallback: Vec<f64>,
    /// Momentum buffers of recent accuracy predictions, aligned with `models`.
    buffers: Vec<VecDeque<f64>>,
    /// Scratch: momentum-averaged accuracy per model, aligned with `models`.
    averaged: Vec<f64>,
    /// Scratch: accuracy-goal filter result per model, aligned with `models`.
    valid: Vec<bool>,
    /// Count of full re-scheduling passes performed.
    reschedule_count: u64,
}

impl Scheduler {
    /// Builds a scheduler from a characterization and a pre-built confidence
    /// graph.
    ///
    /// # Errors
    ///
    /// Returns [`crate::ShiftError::NoCandidatePairs`] when no characterized
    /// model can execute on any allowed accelerator.
    pub fn new(
        config: ShiftConfig,
        characterization: &Characterization,
        graph: ConfidenceGraph,
    ) -> Result<Self, crate::ShiftError> {
        let mut pairs = Vec::new();
        let mut energy_raw = BTreeMap::new();
        let mut latency_raw = BTreeMap::new();
        let mut fallback_accuracy = BTreeMap::new();
        for (model, traits) in &characterization.traits {
            fallback_accuracy.insert(*model, traits.mean_iou);
            for &accelerator in &config.allowed_accelerators {
                if let Some(stats) = traits.stats_on(accelerator) {
                    let pair = CandidatePair::new(*model, accelerator);
                    pairs.push(pair);
                    energy_raw.insert(pair, stats.mean_energy_j);
                    latency_raw.insert(pair, stats.mean_latency_s);
                }
            }
        }
        if pairs.is_empty() {
            return Err(crate::ShiftError::NoCandidatePairs);
        }
        let energy_map = normalize_inverted(&energy_raw);
        let latency_map = normalize_inverted(&latency_raw);
        let energy_score: Vec<f64> = pairs.iter().map(|pair| energy_map[pair]).collect();
        let latency_score: Vec<f64> = pairs.iter().map(|pair| latency_map[pair]).collect();
        let models: Vec<ModelId> = fallback_accuracy.keys().copied().collect();
        let model_fallback: Vec<f64> = fallback_accuracy.values().copied().collect();
        let pair_model: Vec<usize> = pairs
            .iter()
            .map(|pair| {
                models
                    .binary_search(&pair.model)
                    .expect("every pair's model is characterized")
            })
            .collect();
        let pair_dominated =
            dominated_pairs(&pairs, &pair_model, &energy_score, &latency_score, &config);
        let n_models = models.len();
        Ok(Self {
            config,
            graph,
            pairs,
            models,
            pair_model,
            energy_score,
            latency_score,
            pair_dominated,
            model_fallback,
            buffers: vec![VecDeque::new(); n_models],
            averaged: vec![0.0; n_models],
            valid: vec![false; n_models],
            reschedule_count: 0,
        })
    }

    /// Index of `model` in the dense `models`/`model_fallback`/`buffers`
    /// arrays, or `None` for an uncharacterized model.
    fn model_index(&self, model: ModelId) -> Option<usize> {
        self.models.binary_search(&model).ok()
    }

    /// The configuration the scheduler was built with.
    pub fn config(&self) -> &ShiftConfig {
        &self.config
    }

    /// The schedulable pairs.
    pub fn candidate_pairs(&self) -> &[CandidatePair] {
        &self.pairs
    }

    /// The confidence graph in use.
    pub fn graph(&self) -> &ConfidenceGraph {
        &self.graph
    }

    /// Number of full re-scheduling passes performed so far.
    pub fn reschedule_count(&self) -> u64 {
        self.reschedule_count
    }

    /// Normalized, inverted energy score of `pair` in `[0, 1]` (1 marks the
    /// most efficient candidate), or `None` for a pair outside the candidate
    /// set.
    pub fn energy_score_of(&self, pair: CandidatePair) -> Option<f64> {
        let i = self.pairs.iter().position(|&p| p == pair)?;
        Some(self.energy_score[i])
    }

    /// Normalized, inverted latency score of `pair` in `[0, 1]` (1 marks the
    /// fastest candidate), or `None` for a pair outside the candidate set.
    pub fn latency_score_of(&self, pair: CandidatePair) -> Option<f64> {
        let i = self.pairs.iter().position(|&p| p == pair)?;
        Some(self.latency_score[i])
    }

    /// The characterized reference accuracy (mean IoU) of `model`: the value
    /// the scheduler falls back to when the confidence graph reaches no
    /// prediction for the model within the distance threshold.
    pub fn reference_accuracy(&self, model: ModelId) -> Option<f64> {
        Some(self.model_fallback[self.model_index(model)?])
    }

    /// A reasonable initial pair: the most accurate model, placed on its most
    /// energy-efficient allowed accelerator (mirrors a deployment that starts
    /// from the strongest detector before any context is known).
    pub fn initial_pair(&self) -> CandidatePair {
        let mut best: Option<(f64, CandidatePair)> = None;
        for (i, &pair) in self.pairs.iter().enumerate() {
            let accuracy = self.model_fallback[self.pair_model[i]];
            let efficiency = self.energy_score[i];
            let key = accuracy + 1e-3 * efficiency;
            if best.is_none_or(|(k, _)| key > k) {
                best = Some((key, pair));
            }
        }
        best.expect("constructor guarantees at least one pair").1
    }

    /// Runs Algorithm 1 for one frame.
    ///
    /// * `current` — the pair that produced the latest detection.
    /// * `confidence` — the confidence it reported (0 when nothing was
    ///   detected).
    /// * `similarity` — the context detector's `min(NCC_image, NCC_bbox)`.
    pub fn schedule(
        &mut self,
        current: CandidatePair,
        confidence: f64,
        similarity: f64,
    ) -> Decision {
        // Line 3-5: keep the current model while the context is stable and
        // the model is confident.
        if similarity * confidence >= self.config.accuracy_goal {
            return Decision {
                pair: current,
                rescheduled: false,
                similarity,
                scores: Vec::new(),
            };
        }
        self.force_reschedule(current, confidence, similarity)
    }

    /// Runs the full re-scheduling pass of Algorithm 1 unconditionally,
    /// bypassing the similarity gate: confidence-graph lookup, momentum
    /// update, accuracy-goal filter and the arg-max over all candidate
    /// pairs. This is the decision path behind the paper's "< 2 ms per
    /// frame" overhead claim, exposed separately so the perf-regression
    /// suite can benchmark it without constructing gate-defeating inputs.
    pub fn force_reschedule(
        &mut self,
        current: CandidatePair,
        confidence: f64,
        similarity: f64,
    ) -> Decision {
        self.reschedule_count += 1;

        // Line 9: predict accuracies for every model from the current model's
        // confidence via the confidence graph.
        let predictions = self.graph.predict(current.model, confidence);

        // Lines 11-14: push predictions into the momentum buffers and average.
        // (Predictions for uncharacterized models, which the average below
        // would never read, are dropped instead of buffered.)
        for prediction in &predictions {
            let Some(i) = self.model_index(prediction.model) else {
                continue;
            };
            let buffer = &mut self.buffers[i];
            buffer.push_back(prediction.accuracy);
            while buffer.len() > self.config.momentum {
                buffer.pop_front();
            }
        }
        for (i, &fallback) in self.model_fallback.iter().enumerate() {
            let buffer = &self.buffers[i];
            self.averaged[i] = if buffer.is_empty() {
                fallback
            } else {
                buffer.iter().sum::<f64>() / buffer.len() as f64
            };
        }

        // Lines 15-18: keep models meeting the accuracy goal; if none do,
        // consider every model.
        let mut any_valid = false;
        for (i, &averaged) in self.averaged.iter().enumerate() {
            let valid = averaged >= self.config.accuracy_goal;
            self.valid[i] = valid;
            any_valid |= valid;
        }
        if !any_valid {
            self.valid.fill(true);
        }

        // Lines 19-23: score candidate pairs and take the maximum in the same
        // sweep. Every surviving pair is scored and recorded — downstream
        // fault-degrade walks consume the full `scores` list — but pairs
        // marked dominated are skipped by the max tracking: a later
        // same-model pair always scores at least as high (see
        // `dominated_pairs` for why that preserves the arg-max bit-for-bit).
        let knobs = self.config.knobs;
        let mut scores: Vec<(CandidatePair, f64)> = Vec::with_capacity(self.pairs.len());
        let mut best: Option<(CandidatePair, f64)> = None;
        let mut current_score: Option<f64> = None;
        for (i, &pair) in self.pairs.iter().enumerate() {
            if !self.valid[self.pair_model[i]] {
                continue;
            }
            let accuracy = self.averaged[self.pair_model[i]];
            let energy = self.energy_score[i];
            let latency = self.latency_score[i];
            let score = accuracy * knobs.accuracy + energy * knobs.energy + latency * knobs.latency;
            scores.push((pair, score));
            if current_score.is_none() && pair == current {
                current_score = Some(score);
            }
            if !self.pair_dominated[i] {
                // `>=` mirrors `max_by`, which keeps the *last* of equal
                // maxima.
                match best {
                    Some((_, best_score)) if score < best_score => {}
                    _ => best = Some((pair, score)),
                }
            }
        }
        let best = best.unwrap_or((current, 0.0));
        // Hysteresis: keep the incumbent unless the challenger clearly wins.
        let pair = match current_score {
            Some(incumbent)
                if best.0 != current && best.1 <= incumbent * (1.0 + self.config.switch_margin) =>
            {
                current
            }
            _ => best.0,
        };
        Decision {
            pair,
            rescheduled: true,
            similarity,
            scores,
        }
    }

    /// Clears the momentum buffers (used between scenario runs so history
    /// from one video does not leak into the next).
    pub fn reset_buffers(&mut self) {
        for buffer in &mut self.buffers {
            buffer.clear();
        }
    }
}

/// Marks the candidate pairs the arg-max sweep can skip without changing its
/// result: pair `i` is dominated when some *later* pair `j` runs the same
/// model with `energy_score[j] >= energy_score[i]` and `latency_score[j] >=
/// latency_score[i]`.
///
/// Skipping dominated pairs is bit-exact, not just approximately right:
///
/// * Same model means the accuracy term `averaged * knobs.accuracy` is the
///   same f64 for both pairs in every future pass, whatever the momentum
///   buffers hold.
/// * With non-negative energy/latency knobs, `x * knob` and `sum + term` are
///   monotone under IEEE-754 round-to-nearest, so term-by-term dominance
///   carries through the left-to-right score expression:
///   `score[j] >= score[i]` as computed, including any rounding.
/// * The sweep keeps the *last* of equal maxima (matching
///   `Iterator::max_by`). The winning index can therefore never be a
///   dominated pair: its dominator scores at least as high *and* comes
///   later, so it would have won instead.
///
/// Negative knobs flip the monotonicity, so pruning is disabled (all
/// `false`) unless both weight knobs are non-negative. ([`crate::config::Knobs::new`]
/// clamps negatives away, but the fields are public, so this is checked
/// rather than assumed. The accuracy knob's sign is irrelevant: same-model
/// pairs share the accuracy term exactly.)
fn dominated_pairs(
    pairs: &[CandidatePair],
    pair_model: &[usize],
    energy_score: &[f64],
    latency_score: &[f64],
    config: &ShiftConfig,
) -> Vec<bool> {
    let mut dominated = vec![false; pairs.len()];
    if !(config.knobs.energy >= 0.0 && config.knobs.latency >= 0.0) {
        return dominated;
    }
    for i in 0..pairs.len() {
        dominated[i] = (i + 1..pairs.len()).any(|j| {
            pair_model[j] == pair_model[i]
                && energy_score[j] >= energy_score[i]
                && latency_score[j] >= latency_score[i]
        });
    }
    dominated
}

/// Normalizes raw (smaller-is-better) values to `[0, 1]` and inverts them so
/// `1.0` marks the cheapest entry, as required by the scheduler's
/// bigger-is-better maximum search. A degenerate range maps everything to 1.
fn normalize_inverted(raw: &BTreeMap<CandidatePair, f64>) -> BTreeMap<CandidatePair, f64> {
    let min = raw.values().copied().fold(f64::INFINITY, f64::min);
    let max = raw.values().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = max - min;
    raw.iter()
        .map(|(&pair, &value)| {
            let normalized = if span <= f64::EPSILON {
                1.0
            } else {
                1.0 - (value - min) / span
            };
            (pair, normalized)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::characterize::characterize;
    use crate::graph::GraphConfig;
    use shift_models::{ModelZoo, ResponseModel};
    use shift_soc::{ExecutionEngine, Platform};
    use shift_video::CharacterizationDataset;

    fn build_scheduler(config: ShiftConfig) -> Scheduler {
        let engine = ExecutionEngine::new(
            Platform::xavier_nx_with_oak(),
            ModelZoo::standard(),
            ResponseModel::new(4),
        );
        let characterization = characterize(&engine, &CharacterizationDataset::generate(200, 8));
        let graph = ConfidenceGraph::build(
            &characterization.samples,
            GraphConfig::paper_defaults().with_distance_threshold(config.distance_threshold),
        );
        Scheduler::new(config, &characterization, graph).expect("scheduler builds")
    }

    #[test]
    fn candidate_pairs_exclude_cpu_by_default() {
        let scheduler = build_scheduler(ShiftConfig::paper_defaults());
        assert!(scheduler
            .candidate_pairs()
            .iter()
            .all(|p| p.accelerator != AcceleratorId::Cpu));
        // 8 models x (GPU + DLA0 + DLA1) + 2 x OAK-D = 26 instance-level pairs.
        assert_eq!(scheduler.candidate_pairs().len(), 26);
    }

    #[test]
    fn similarity_gate_keeps_the_current_pair() {
        let mut scheduler = build_scheduler(ShiftConfig::paper_defaults());
        let current = CandidatePair::new(ModelId::YoloV7, AcceleratorId::Gpu);
        let decision = scheduler.schedule(current, 0.9, 0.95);
        assert_eq!(decision.pair, current);
        assert!(!decision.rescheduled);
        assert!(decision.scores.is_empty());
        assert_eq!(scheduler.reschedule_count(), 0);
    }

    #[test]
    fn low_similarity_triggers_rescheduling() {
        let mut scheduler = build_scheduler(ShiftConfig::paper_defaults());
        let current = CandidatePair::new(ModelId::YoloV7, AcceleratorId::Gpu);
        let decision = scheduler.schedule(current, 0.9, 0.1);
        assert!(decision.rescheduled);
        assert!(!decision.scores.is_empty());
        assert_eq!(scheduler.reschedule_count(), 1);
    }

    #[test]
    fn force_reschedule_bypasses_the_similarity_gate() {
        let mut scheduler = build_scheduler(ShiftConfig::paper_defaults());
        let current = CandidatePair::new(ModelId::YoloV7, AcceleratorId::Gpu);
        // These inputs pass the gate in `schedule` (0.9 * 0.95 >= goal)...
        let gated = scheduler.schedule(current, 0.9, 0.95);
        assert!(!gated.rescheduled);
        // ...but `force_reschedule` runs the full arg-max pass anyway.
        let forced = scheduler.force_reschedule(current, 0.9, 0.95);
        assert!(forced.rescheduled);
        assert!(!forced.scores.is_empty());
        assert_eq!(scheduler.reschedule_count(), 1);
    }

    #[test]
    fn zero_confidence_always_reschedules() {
        let mut scheduler = build_scheduler(ShiftConfig::paper_defaults());
        let current = CandidatePair::new(ModelId::YoloV7Tiny, AcceleratorId::OakD);
        let decision = scheduler.schedule(current, 0.0, 1.0);
        assert!(decision.rescheduled);
    }

    #[test]
    fn energy_knob_pushes_choices_toward_efficient_pairs() {
        use crate::config::Knobs;
        let energy_cfg = ShiftConfig::paper_defaults().with_knobs(Knobs::new(0.1, 3.0, 0.0));
        let accuracy_cfg = ShiftConfig::paper_defaults().with_knobs(Knobs::new(3.0, 0.0, 0.0));
        let mut energy_sched = build_scheduler(energy_cfg);
        let mut accuracy_sched = build_scheduler(accuracy_cfg);
        let current = CandidatePair::new(ModelId::YoloV7, AcceleratorId::Gpu);
        // Force a re-schedule with a high confidence (hard context unknown).
        let energy_pick = energy_sched.schedule(current, 0.8, 0.0);
        let accuracy_pick = accuracy_sched.schedule(current, 0.8, 0.0);
        let energy_of =
            |pair: &CandidatePair, s: &Scheduler| s.energy_score_of(*pair).unwrap_or(0.0);
        assert!(
            energy_of(&energy_pick.pair, &energy_sched)
                >= energy_of(&accuracy_pick.pair, &accuracy_sched),
            "energy-weighted scheduler should pick at least as efficient a pair"
        );
    }

    #[test]
    fn accuracy_first_knobs_pick_a_strong_model_when_context_is_hard() {
        let config = ShiftConfig::paper_defaults()
            .with_knobs(crate::config::Knobs::accuracy_first())
            .with_accuracy_goal(0.5);
        let mut scheduler = build_scheduler(config);
        let current = CandidatePair::new(ModelId::SsdMobilenetV2Small, AcceleratorId::Gpu);
        // Low confidence from the small model on a changed scene.
        let decision = scheduler.schedule(current, 0.35, 0.1);
        assert!(decision.rescheduled);
        let chosen = decision.pair.model;
        let strong_families = [
            ModelId::YoloV7,
            ModelId::YoloV7X,
            ModelId::YoloV7E6E,
            ModelId::YoloV7Tiny,
        ];
        assert!(
            strong_families.contains(&chosen),
            "accuracy-first scheduling should escalate to a YoloV7 variant, got {chosen}"
        );
    }

    #[test]
    fn momentum_buffer_is_bounded() {
        let config = ShiftConfig::paper_defaults().with_momentum(5);
        let mut scheduler = build_scheduler(config);
        let current = CandidatePair::new(ModelId::YoloV7, AcceleratorId::Gpu);
        for _ in 0..50 {
            scheduler.schedule(current, 0.6, 0.0);
        }
        for buffer in &scheduler.buffers {
            assert!(buffer.len() <= 5);
        }
        scheduler.reset_buffers();
        assert!(scheduler.buffers.iter().all(|b| b.is_empty()));
    }

    #[test]
    fn initial_pair_is_an_accurate_model() {
        let scheduler = build_scheduler(ShiftConfig::paper_defaults());
        let pair = scheduler.initial_pair();
        assert_eq!(pair.model, ModelId::YoloV7, "highest characterized IoU");
    }

    #[test]
    fn no_candidate_pairs_is_an_error() {
        let engine = ExecutionEngine::new(
            Platform::xavier_nx_with_oak(),
            ModelZoo::standard(),
            ResponseModel::new(4),
        );
        let characterization = characterize(&engine, &CharacterizationDataset::generate(20, 8));
        let graph =
            ConfidenceGraph::build(&characterization.samples, GraphConfig::paper_defaults());
        let config = ShiftConfig::paper_defaults().with_allowed_accelerators(vec![]);
        let result = Scheduler::new(config, &characterization, graph);
        assert_eq!(result.err(), Some(crate::ShiftError::NoCandidatePairs));
    }

    #[test]
    fn normalization_inverts_ordering() {
        let mut raw = BTreeMap::new();
        let a = CandidatePair::new(ModelId::YoloV7, AcceleratorId::Gpu);
        let b = CandidatePair::new(ModelId::YoloV7Tiny, AcceleratorId::Gpu);
        raw.insert(a, 2.0);
        raw.insert(b, 0.5);
        let normalized = normalize_inverted(&raw);
        assert_eq!(normalized[&b], 1.0, "cheapest maps to 1");
        assert_eq!(normalized[&a], 0.0, "most expensive maps to 0");
    }

    #[test]
    fn degenerate_normalization_maps_to_one() {
        let mut raw = BTreeMap::new();
        let a = CandidatePair::new(ModelId::YoloV7, AcceleratorId::Gpu);
        raw.insert(a, 3.3);
        let normalized = normalize_inverted(&raw);
        assert_eq!(normalized[&a], 1.0);
    }

    #[test]
    fn decision_display_types() {
        let pair = CandidatePair::new(ModelId::YoloV7, AcceleratorId::Dla0);
        assert_eq!(pair.to_string(), "YoloV7 on DLA0");
    }

    #[test]
    fn fallback_order_with_duplicated_incumbent() {
        // The exact degrade sequence both runtimes walk: scored pairs sorted
        // by descending score with ties broken on the pair ordering, then the
        // incumbent, minus the decided pair and duplicates. Here the
        // incumbent `a` is *also* a scored candidate, so it must appear once,
        // at its scored rank — not again at the tail.
        let a = CandidatePair::new(ModelId::YoloV7, AcceleratorId::Gpu);
        let b = CandidatePair::new(ModelId::YoloV7, AcceleratorId::Dla0);
        let c = CandidatePair::new(ModelId::YoloV7Tiny, AcceleratorId::Gpu);
        let d = CandidatePair::new(ModelId::YoloV7Tiny, AcceleratorId::Dla0);
        let decision = Decision {
            pair: b,
            rescheduled: true,
            similarity: 0.1,
            scores: vec![(a, 0.4), (b, 0.9), (c, 0.4), (d, 0.2)],
        };
        // Rank: b(0.9) removed as the decided pair; a and c tie at 0.4 and
        // break on pair order (YoloV7 < YoloV7Tiny); d(0.2) last.
        assert_eq!(decision.fallback_candidates(a), vec![a, c, d]);
        // An unscored incumbent lands at the tail instead.
        let e = CandidatePair::new(ModelId::SsdResnet50, AcceleratorId::Gpu);
        assert_eq!(decision.fallback_candidates(e), vec![a, c, d, e]);
    }

    #[test]
    fn fallback_of_gated_decision_is_just_the_incumbent() {
        let a = CandidatePair::new(ModelId::YoloV7, AcceleratorId::Gpu);
        let b = CandidatePair::new(ModelId::YoloV7, AcceleratorId::Dla0);
        let decision = Decision {
            pair: a,
            rescheduled: false,
            similarity: 0.99,
            scores: Vec::new(),
        };
        assert_eq!(decision.fallback_candidates(b), vec![b]);
        assert!(decision.fallback_candidates(a).is_empty());
    }

    #[test]
    fn dominated_pairs_never_win_the_argmax() {
        // Whatever the dominance precomputation marks, the pair force_reschedule
        // picks must never be one of them — that is the whole safety argument.
        let mut scheduler = build_scheduler(ShiftConfig::paper_defaults());
        assert!(
            scheduler.pair_dominated.iter().any(|&d| d),
            "paper-default traits should admit at least one dominated pair"
        );
        let current = CandidatePair::new(ModelId::YoloV7, AcceleratorId::Gpu);
        for confidence in [0.0, 0.3, 0.6, 0.9] {
            let decision = scheduler.force_reschedule(current, confidence, 0.0);
            let winner = scheduler
                .pairs
                .iter()
                .position(|&p| p == decision.pair)
                .expect("decided pair is a candidate");
            assert!(
                !scheduler.pair_dominated[winner] || decision.pair == current,
                "a dominated pair won the arg-max: {}",
                decision.pair
            );
        }
    }
}
