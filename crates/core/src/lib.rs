//! # shift-core
//!
//! The SHIFT runtime: context-aware, multi-model, multi-accelerator object
//! detection scheduling (Davis & Belviranli, DATE 2024).
//!
//! SHIFT is built from four cooperating pieces, each in its own module:
//!
//! * [`characterize`](mod@characterize) — the offline characterization pass that measures every
//!   model's accuracy, confidence behaviour, latency, energy and load cost on
//!   a validation dataset (paper §III-A, "ODM Trait Identification").
//! * [`graph`] — the *confidence graph*: a lookup structure that converts the
//!   confidence score of the one model that just ran into accuracy
//!   predictions for **all** models (paper §III-A, "Confidence Graph
//!   Creation").
//! * [`scheduler`] — the runtime decision heuristic (paper Algorithm 1) that
//!   combines the confidence-graph predictions with normalized energy and
//!   latency traits under tunable knobs.
//! * [`loader`] — the dynamic model loader that manages per-accelerator
//!   memory with least-recently-used eviction (paper §III-C).
//!
//! [`runtime::ShiftRuntime`] ties them together into the per-frame loop used
//! by the evaluation harness.
//!
//! ```
//! use shift_core::prelude::*;
//! use shift_models::{ModelZoo, ResponseModel};
//! use shift_soc::{ExecutionEngine, Platform};
//! use shift_video::{CharacterizationDataset, Scenario};
//!
//! // Offline: characterize the zoo and build the confidence graph.
//! let engine = ExecutionEngine::new(
//!     Platform::xavier_nx_with_oak(),
//!     ModelZoo::standard(),
//!     ResponseModel::new(1),
//! );
//! let dataset = CharacterizationDataset::generate(120, 7);
//! let characterization = characterize(&engine, &dataset);
//!
//! // Online: run SHIFT over a (shortened) scenario.
//! let config = ShiftConfig::paper_defaults();
//! let mut runtime = ShiftRuntime::new(engine, &characterization, config)?;
//! let outcomes = runtime.run(Scenario::scenario_3().with_num_frames(25).stream())?;
//! assert_eq!(outcomes.len(), 25);
//! # Ok::<(), shift_core::ShiftError>(())
//! ```

#![warn(missing_docs)]

pub mod characterize;
pub mod cluster;
pub mod config;
pub mod context;
pub mod des;
pub mod fleet;
pub mod graph;
pub mod loader;
pub mod predictor;
pub mod runtime;
pub mod scheduler;
pub mod service;
pub mod traits;

pub use characterize::{characterize, Characterization, ModelObservation, SampleObservation};
pub use cluster::{
    ClusterBuilder, ClusterEvent, ClusterFrameOutcome, ClusterPolicy, ClusterScheduler,
    ClusterSessionId, ClusterSessionRecord, MigrationRecord,
};
pub use config::{Knobs, ShiftConfig};
pub use context::ContextDetector;
pub use des::{Event, EventKey, EventKind, EventQueue, ExecutionMode, TraceEvent};
pub use fleet::{
    FleetBuilder, FleetConfig, FleetFrameOutcome, FleetRuntime, StreamHandle, StreamSpec,
    StreamView,
};
pub use graph::{ConfidenceGraph, GraphConfig, Prediction};
pub use loader::{DynamicModelLoader, LoadOutcome};
pub use predictor::{
    prediction_mae, AccuracyPredictor, EnsemblePredictor, PassthroughPredictor, RegressionPredictor,
};
pub use runtime::{FrameOutcome, LoadCharge, ResilienceCounters, ShiftRuntime, StreamAgent};
pub use scheduler::{CandidatePair, Decision, Scheduler};
pub use service::{
    AttachRequest, DeadlineClass, FleetService, RejectReason, ServicePolicy, SessionEvent,
    SessionId, SessionRecord, SessionRequest,
};
pub use traits::{AcceleratorStats, ModelTraits};

/// Convenient glob import for downstream crates and examples.
pub mod prelude {
    pub use crate::characterize::{characterize, Characterization};
    pub use crate::cluster::{ClusterBuilder, ClusterPolicy, ClusterScheduler, ClusterSessionId};
    pub use crate::config::{Knobs, ShiftConfig};
    pub use crate::des::{EventKind, EventQueue, ExecutionMode};
    pub use crate::fleet::{
        FleetBuilder, FleetConfig, FleetFrameOutcome, FleetRuntime, StreamHandle, StreamSpec,
    };
    pub use crate::graph::{ConfidenceGraph, GraphConfig};
    pub use crate::runtime::{FrameOutcome, ResilienceCounters, ShiftRuntime};
    pub use crate::scheduler::{CandidatePair, Scheduler};
    pub use crate::service::{
        AttachRequest, DeadlineClass, FleetService, ServicePolicy, SessionEvent, SessionRequest,
    };
    pub use crate::ShiftError;
}

use shift_soc::SocError;

/// Errors produced by the SHIFT runtime.
#[derive(Debug, Clone, PartialEq)]
pub enum ShiftError {
    /// The underlying SoC simulator rejected an operation.
    Soc(SocError),
    /// The configuration allows no executable (model, accelerator) pair.
    NoCandidatePairs,
    /// The characterization contains no samples, so no confidence graph can
    /// be built.
    EmptyCharacterization,
    /// A fleet was constructed with no streams.
    EmptyFleet,
}

impl std::fmt::Display for ShiftError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShiftError::Soc(err) => write!(f, "soc error: {err}"),
            ShiftError::NoCandidatePairs => {
                write!(f, "no executable model/accelerator pairs are available")
            }
            ShiftError::EmptyCharacterization => {
                write!(f, "characterization contains no samples")
            }
            ShiftError::EmptyFleet => {
                write!(f, "fleet contains no streams")
            }
        }
    }
}

impl std::error::Error for ShiftError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ShiftError::Soc(err) => Some(err),
            _ => None,
        }
    }
}

impl From<SocError> for ShiftError {
    fn from(err: SocError) -> Self {
        ShiftError::Soc(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_and_source() {
        use std::error::Error;
        let err = ShiftError::NoCandidatePairs;
        assert!(!err.to_string().is_empty());
        assert!(err.source().is_none());
        let err: ShiftError = SocError::UnknownModel(shift_models::ModelId::YoloV7).into();
        assert!(err.to_string().contains("soc error"));
        assert!(err.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ShiftError>();
    }
}
