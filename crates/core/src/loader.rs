//! The dynamic model loader (paper §III-C).
//!
//! "When there is a scheduling decision and a new model is requested to be
//! loaded into memory, the dynamic model loader will query the system's
//! available memory. The DML will attempt to occupy the entire memory with
//! ODMs, if it is able to. ... When replacing models the DML will replace the
//! model which was least recently requested."
//!
//! The loader wraps the execution engine's per-accelerator memory pools with
//! an LRU policy and exposes a single `ensure_loaded` entry point used by the
//! runtime after every scheduling decision.

use crate::scheduler::CandidatePair;
use serde::{Deserialize, Serialize};
use shift_models::ModelId;
use shift_soc::{AcceleratorId, ExecutionEngine, SocError};
use std::collections::{BTreeMap, VecDeque};

/// What happened when the loader made a (model, accelerator) pair resident.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoadOutcome {
    /// The pair that is now resident.
    pub pair: CandidatePair,
    /// Whether a new load actually happened (false when already resident).
    pub loaded: bool,
    /// Models evicted to make room, in eviction order.
    pub evicted: Vec<ModelId>,
    /// Total virtual time spent loading, seconds.
    pub load_time_s: f64,
    /// Total energy spent loading, joules.
    pub load_energy_j: f64,
}

impl LoadOutcome {
    fn already_resident(pair: CandidatePair) -> Self {
        Self {
            pair,
            loaded: false,
            evicted: Vec::new(),
            load_time_s: 0.0,
            load_energy_j: 0.0,
        }
    }
}

/// LRU-managed dynamic model loader.
///
/// The loader tracks request recency per accelerator; the engine tracks
/// residency and capacity. Keeping the two concerns separate means the loader
/// can be swapped out in ablation studies (e.g. a no-cache loader that evicts
/// everything on every swap) without touching the engine.
#[derive(Debug, Clone, Default)]
pub struct DynamicModelLoader {
    /// Per accelerator: models ordered from least to most recently requested.
    recency: BTreeMap<AcceleratorId, VecDeque<ModelId>>,
    /// Count of model swaps (loads that required evicting or fetching a model
    /// that was not already resident).
    swap_count: u64,
}

impl DynamicModelLoader {
    /// Creates an empty loader.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of swaps (non-trivial loads) performed so far.
    pub fn swap_count(&self) -> u64 {
        self.swap_count
    }

    /// Marks `pair` as just-requested without loading anything (used when the
    /// scheduler keeps the current model).
    pub fn touch(&mut self, pair: CandidatePair) {
        let queue = self.recency.entry(pair.accelerator).or_default();
        queue.retain(|&m| m != pair.model);
        queue.push_back(pair.model);
    }

    /// Ensures `pair` is resident on its accelerator, evicting
    /// least-recently-requested models as needed.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`SocError`] when the pair is incompatible or
    /// the model cannot fit even into an empty pool.
    pub fn ensure_loaded(
        &mut self,
        engine: &mut ExecutionEngine,
        pair: CandidatePair,
    ) -> Result<LoadOutcome, SocError> {
        self.ensure_loaded_protected(engine, pair, &[])
    }

    /// Like [`ensure_loaded`](Self::ensure_loaded), but refuses to evict any
    /// of the `protected` models. Used by the fleet runtime, where the
    /// eviction set spans every stream and a model another stream is actively
    /// running must not be stolen from under it.
    ///
    /// # Errors
    ///
    /// Returns [`SocError::OutOfMemory`] when the model cannot fit without
    /// evicting a protected model, plus the compatibility errors of
    /// [`ensure_loaded`](Self::ensure_loaded).
    pub fn ensure_loaded_protected(
        &mut self,
        engine: &mut ExecutionEngine,
        pair: CandidatePair,
        protected: &[ModelId],
    ) -> Result<LoadOutcome, SocError> {
        if engine.is_loaded(pair.model, pair.accelerator) {
            self.touch(pair);
            return Ok(LoadOutcome::already_resident(pair));
        }

        let mut evicted = Vec::new();
        let mut total_time = 0.0;
        let mut total_energy = 0.0;
        loop {
            match engine.load_model(pair.model, pair.accelerator) {
                Ok(report) => {
                    total_time += report.load_time_s;
                    total_energy += report.load_energy_j;
                    self.touch(pair);
                    self.swap_count += 1;
                    return Ok(LoadOutcome {
                        pair,
                        loaded: !report.already_loaded,
                        evicted,
                        load_time_s: total_time,
                        load_energy_j: total_energy,
                    });
                }
                Err(SocError::OutOfMemory { .. }) => {
                    let Some(victim) =
                        self.pick_victim(engine, pair.accelerator, pair.model, protected)
                    else {
                        // Nothing left to evict: the model genuinely cannot fit.
                        return Err(SocError::OutOfMemory {
                            model: pair.model,
                            accelerator: pair.accelerator,
                            required_mb: engine
                                .zoo()
                                .get(pair.model)
                                .map(|s| s.load.memory_mb)
                                .unwrap_or(0.0),
                            capacity_mb: engine
                                .pool(pair.accelerator)
                                .map(|p| p.capacity_mb())
                                .unwrap_or(0.0),
                        });
                    };
                    engine.unload_model(victim, pair.accelerator);
                    if let Some(queue) = self.recency.get_mut(&pair.accelerator) {
                        queue.retain(|&m| m != victim);
                    }
                    evicted.push(victim);
                }
                Err(other) => return Err(other),
            }
        }
    }

    /// Greedily pre-loads models onto an accelerator in the order given,
    /// stopping when the pool cannot take the next one. Mirrors the DML's
    /// "attempt to occupy the entire memory with ODMs" behaviour at startup.
    ///
    /// Returns the models that were actually loaded.
    pub fn prefetch(
        &mut self,
        engine: &mut ExecutionEngine,
        accelerator: AcceleratorId,
        preferred_order: &[ModelId],
    ) -> Vec<ModelId> {
        let mut loaded = Vec::new();
        for &model in preferred_order {
            let pair = CandidatePair::new(model, accelerator);
            if engine.is_loaded(model, accelerator) {
                continue;
            }
            match engine.load_model(model, accelerator) {
                Ok(_) => {
                    self.touch(pair);
                    loaded.push(model);
                }
                Err(SocError::OutOfMemory { .. }) => break,
                Err(_) => continue,
            }
        }
        loaded
    }

    /// Least-recently-requested resident model on `accelerator`, excluding
    /// `incoming` (never evict the model we are about to use) and any
    /// `protected` model.
    fn pick_victim(
        &self,
        engine: &ExecutionEngine,
        accelerator: AcceleratorId,
        incoming: ModelId,
        protected: &[ModelId],
    ) -> Option<ModelId> {
        let resident = engine.loaded_models(accelerator);
        if resident.is_empty() {
            return None;
        }
        let evictable = |m: ModelId| m != incoming && !protected.contains(&m);
        if let Some(queue) = self.recency.get(&accelerator) {
            for &candidate in queue {
                if evictable(candidate) && resident.contains(&candidate) {
                    return Some(candidate);
                }
            }
        }
        // Models resident but never requested through the loader (e.g. loaded
        // directly by a baseline) are evicted first.
        resident.into_iter().find(|&m| evictable(m))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shift_models::{ModelZoo, ResponseModel};
    use shift_soc::Platform;

    fn engine() -> ExecutionEngine {
        ExecutionEngine::new(
            Platform::xavier_nx_with_oak(),
            ModelZoo::standard(),
            ResponseModel::new(2),
        )
    }

    #[test]
    fn ensure_loaded_loads_once_then_is_free() {
        let mut e = engine();
        let mut loader = DynamicModelLoader::new();
        let pair = CandidatePair::new(ModelId::YoloV7, AcceleratorId::Gpu);
        let first = loader.ensure_loaded(&mut e, pair).unwrap();
        assert!(first.loaded);
        assert!(first.load_time_s > 0.0);
        let second = loader.ensure_loaded(&mut e, pair).unwrap();
        assert!(!second.loaded);
        assert_eq!(second.load_time_s, 0.0);
        assert_eq!(loader.swap_count(), 1);
    }

    #[test]
    fn lru_eviction_picks_least_recently_requested() {
        let mut e = engine();
        let mut loader = DynamicModelLoader::new();
        // GPU pool is 1536 MB: E6E (620) + X (480) + Resnet50 (350) = 1450.
        for model in [ModelId::YoloV7E6E, ModelId::YoloV7X, ModelId::SsdResnet50] {
            loader
                .ensure_loaded(&mut e, CandidatePair::new(model, AcceleratorId::Gpu))
                .unwrap();
        }
        // Touch E6E so YoloV7X becomes the LRU entry.
        loader.touch(CandidatePair::new(ModelId::YoloV7E6E, AcceleratorId::Gpu));
        // Loading YoloV7 (280 MB) requires evicting someone: expect YoloV7X.
        let outcome = loader
            .ensure_loaded(
                &mut e,
                CandidatePair::new(ModelId::YoloV7, AcceleratorId::Gpu),
            )
            .unwrap();
        assert!(outcome.loaded);
        assert_eq!(outcome.evicted, vec![ModelId::YoloV7X]);
        assert!(e.is_loaded(ModelId::YoloV7, AcceleratorId::Gpu));
        assert!(!e.is_loaded(ModelId::YoloV7X, AcceleratorId::Gpu));
        assert!(e.is_loaded(ModelId::YoloV7E6E, AcceleratorId::Gpu));
    }

    #[test]
    fn memory_capacity_is_never_exceeded() {
        let mut e = engine();
        let mut loader = DynamicModelLoader::new();
        let models = [
            ModelId::YoloV7E6E,
            ModelId::YoloV7X,
            ModelId::SsdResnet50,
            ModelId::YoloV7,
            ModelId::SsdMobilenetV1,
            ModelId::YoloV7E6E,
            ModelId::YoloV7X,
        ];
        for model in models {
            loader
                .ensure_loaded(&mut e, CandidatePair::new(model, AcceleratorId::Gpu))
                .unwrap();
            let pool = e.pool(AcceleratorId::Gpu).unwrap();
            assert!(
                pool.used_mb() <= pool.capacity_mb() + 1e-9,
                "pool overflowed: {} / {}",
                pool.used_mb(),
                pool.capacity_mb()
            );
        }
    }

    #[test]
    fn incompatible_pair_errors_out() {
        let mut e = engine();
        let mut loader = DynamicModelLoader::new();
        let err = loader
            .ensure_loaded(
                &mut e,
                CandidatePair::new(ModelId::SsdResnet50, AcceleratorId::OakD),
            )
            .unwrap_err();
        assert!(matches!(err, SocError::IncompatiblePair { .. }));
    }

    #[test]
    fn prefetch_fills_until_capacity() {
        let mut e = engine();
        let mut loader = DynamicModelLoader::new();
        let order = [
            ModelId::YoloV7,
            ModelId::YoloV7Tiny,
            ModelId::SsdMobilenetV2,
            ModelId::SsdMobilenetV2Small,
            ModelId::SsdMobilenetV1,
            ModelId::SsdResnet50,
            ModelId::YoloV7X,
            ModelId::YoloV7E6E,
        ];
        let loaded = loader.prefetch(&mut e, AcceleratorId::Dla0, &order);
        assert!(loaded.len() >= 4, "1 GB pool should hold several models");
        let pool = e.pool(AcceleratorId::Dla0).unwrap();
        assert!(pool.used_mb() <= pool.capacity_mb());
        // Prefetch stops at the first model that does not fit.
        assert!(pool.utilization() > 0.5);
    }

    #[test]
    fn prefetch_skips_incompatible_models() {
        let mut e = engine();
        let mut loader = DynamicModelLoader::new();
        let loaded = loader.prefetch(
            &mut e,
            AcceleratorId::OakD,
            &[ModelId::SsdResnet50, ModelId::YoloV7Tiny],
        );
        assert_eq!(loaded, vec![ModelId::YoloV7Tiny]);
    }

    #[test]
    fn protected_models_are_never_evicted() {
        let mut e = engine();
        let mut loader = DynamicModelLoader::new();
        // GPU pool is 1536 MB: E6E (620) + X (480) + Resnet50 (350) = 1450.
        for model in [ModelId::YoloV7E6E, ModelId::YoloV7X, ModelId::SsdResnet50] {
            loader
                .ensure_loaded(&mut e, CandidatePair::new(model, AcceleratorId::Gpu))
                .unwrap();
        }
        // E6E is the LRU entry but protected, so X must be the victim.
        let outcome = loader
            .ensure_loaded_protected(
                &mut e,
                CandidatePair::new(ModelId::YoloV7, AcceleratorId::Gpu),
                &[ModelId::YoloV7E6E],
            )
            .unwrap();
        assert_eq!(outcome.evicted, vec![ModelId::YoloV7X]);
        assert!(e.is_loaded(ModelId::YoloV7E6E, AcceleratorId::Gpu));
        // Protecting every resident model leaves nothing to evict.
        let err = loader
            .ensure_loaded_protected(
                &mut e,
                CandidatePair::new(ModelId::YoloV7X, AcceleratorId::Gpu),
                &[ModelId::YoloV7E6E, ModelId::SsdResnet50, ModelId::YoloV7],
            )
            .unwrap_err();
        assert!(matches!(err, SocError::OutOfMemory { .. }));
        assert!(e.is_loaded(ModelId::SsdResnet50, AcceleratorId::Gpu));
    }

    #[test]
    fn touch_reorders_without_loading() {
        let mut loader = DynamicModelLoader::new();
        loader.touch(CandidatePair::new(ModelId::YoloV7, AcceleratorId::Gpu));
        loader.touch(CandidatePair::new(ModelId::YoloV7Tiny, AcceleratorId::Gpu));
        loader.touch(CandidatePair::new(ModelId::YoloV7, AcceleratorId::Gpu));
        let queue = loader.recency.get(&AcceleratorId::Gpu).unwrap();
        assert_eq!(queue.len(), 2);
        assert_eq!(*queue.back().unwrap(), ModelId::YoloV7);
        assert_eq!(loader.swap_count(), 0);
    }
}
