//! Alternative accuracy predictors for ablating the confidence graph.
//!
//! The paper motivates the confidence graph by contrasting it with "costly
//! classifiers, an ensemble, or less expensive predictors employed by similar
//! works". This module makes that comparison concrete: every predictor maps
//! *(model that just ran, confidence it reported)* to an accuracy estimate
//! for **every** model, exactly like [`ConfidenceGraph::predict`], so the
//! ablation experiments can swap them freely and measure prediction error and
//! lookup cost side by side.
//!
//! Implemented predictors:
//!
//! * [`ConfidenceGraph`] itself (the paper's mechanism).
//! * [`PassthroughPredictor`] — assume every model would achieve exactly the
//!   reported confidence (the naive "trust the DNN" baseline).
//! * [`RegressionPredictor`] — one least-squares linear fit per
//!   (source, target) model pair, learned from the same characterization
//!   samples the graph is built from.
//! * [`EnsemblePredictor`] — averages any set of predictors.

use crate::characterize::SampleObservation;
use crate::graph::{ConfidenceGraph, Prediction};
use serde::{Deserialize, Serialize};
use shift_models::ModelId;
use std::collections::BTreeMap;

/// A runtime accuracy predictor: converts the confidence score of the one
/// model that actually ran into accuracy estimates for all models.
pub trait AccuracyPredictor {
    /// Human-readable name used in ablation reports.
    fn name(&self) -> &'static str;

    /// Predicts the accuracy every known model would achieve on the current
    /// frame, given that `model` just reported `confidence`.
    ///
    /// Returns one [`Prediction`] per model the predictor knows about; an
    /// unknown `model` yields an empty vector.
    fn predict(&self, model: ModelId, confidence: f64) -> Vec<Prediction>;
}

impl AccuracyPredictor for ConfidenceGraph {
    fn name(&self) -> &'static str {
        "confidence-graph"
    }

    fn predict(&self, model: ModelId, confidence: f64) -> Vec<Prediction> {
        ConfidenceGraph::predict(self, model, confidence)
    }
}

/// Naive predictor: whatever confidence the current model reports is assumed
/// to be the accuracy of every model.
///
/// This is the cheapest possible predictor and the one the paper's
/// introduction warns about: confidence scores "are not consistent across
/// different ODM architectures", so passing them through untranslated
/// systematically mis-ranks the other models.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PassthroughPredictor {
    models: Vec<ModelId>,
}

impl PassthroughPredictor {
    /// Creates a passthrough predictor for the given models.
    pub fn new(models: Vec<ModelId>) -> Self {
        Self { models }
    }

    /// Creates a passthrough predictor covering every model that appears in
    /// the characterization samples.
    pub fn from_samples(samples: &[SampleObservation]) -> Self {
        Self {
            models: models_in(samples),
        }
    }
}

impl AccuracyPredictor for PassthroughPredictor {
    fn name(&self) -> &'static str {
        "confidence-passthrough"
    }

    fn predict(&self, model: ModelId, confidence: f64) -> Vec<Prediction> {
        if !self.models.contains(&model) {
            return Vec::new();
        }
        let accuracy = confidence.clamp(0.0, 1.0);
        self.models
            .iter()
            .map(|&m| Prediction {
                model: m,
                accuracy,
                distance: if m == model { 0.0 } else { 1.0 },
            })
            .collect()
    }
}

/// One least-squares linear fit `iou_target ≈ slope * conf_source + intercept`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct LinearFit {
    slope: f64,
    intercept: f64,
    samples: usize,
}

impl LinearFit {
    fn fit(points: &[(f64, f64)]) -> Self {
        let n = points.len();
        if n == 0 {
            return Self {
                slope: 0.0,
                intercept: 0.0,
                samples: 0,
            };
        }
        let nf = n as f64;
        let mean_x = points.iter().map(|p| p.0).sum::<f64>() / nf;
        let mean_y = points.iter().map(|p| p.1).sum::<f64>() / nf;
        let mut cov = 0.0;
        let mut var = 0.0;
        for &(x, y) in points {
            cov += (x - mean_x) * (y - mean_y);
            var += (x - mean_x) * (x - mean_x);
        }
        if var <= 1e-12 {
            return Self {
                slope: 0.0,
                intercept: mean_y,
                samples: n,
            };
        }
        let slope = cov / var;
        Self {
            slope,
            intercept: mean_y - slope * mean_x,
            samples: n,
        }
    }

    fn eval(&self, x: f64) -> f64 {
        (self.slope * x + self.intercept).clamp(0.0, 1.0)
    }
}

/// Per-(source, target) linear regression predictor.
///
/// For every ordered pair of models the predictor fits a linear map from the
/// source model's confidence score to the target model's measured IoU on the
/// characterization frames where both produced a detection. Prediction is two
/// map lookups and a multiply-add per model — comparable in cost to the
/// confidence graph's map lookup, but without the graph's ability to pool
/// statistically related confidence bins.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegressionPredictor {
    fits: BTreeMap<(ModelId, ModelId), LinearFit>,
    models: Vec<ModelId>,
}

impl RegressionPredictor {
    /// Fits the predictor from characterization samples.
    pub fn fit(samples: &[SampleObservation]) -> Self {
        let models = models_in(samples);
        let mut fits = BTreeMap::new();
        for &source in &models {
            for &target in &models {
                let points: Vec<(f64, f64)> = samples
                    .iter()
                    .filter_map(|sample| {
                        let s = sample.per_model.get(&source)?;
                        let t = sample.per_model.get(&target)?;
                        if !s.detected {
                            return None;
                        }
                        Some((s.confidence, t.iou))
                    })
                    .collect();
                fits.insert((source, target), LinearFit::fit(&points));
            }
        }
        Self { fits, models }
    }

    /// Models covered by the predictor.
    pub fn models(&self) -> &[ModelId] {
        &self.models
    }
}

impl AccuracyPredictor for RegressionPredictor {
    fn name(&self) -> &'static str {
        "pairwise-regression"
    }

    fn predict(&self, model: ModelId, confidence: f64) -> Vec<Prediction> {
        if !self.models.contains(&model) {
            return Vec::new();
        }
        self.models
            .iter()
            .map(|&target| {
                let fit = self
                    .fits
                    .get(&(model, target))
                    .copied()
                    .unwrap_or(LinearFit {
                        slope: 0.0,
                        intercept: 0.0,
                        samples: 0,
                    });
                Prediction {
                    model: target,
                    accuracy: fit.eval(confidence),
                    distance: if target == model { 0.0 } else { 1.0 },
                }
            })
            .collect()
    }
}

/// Averages the predictions of several predictors.
///
/// This stands in for the "ensemble" alternative the paper mentions: more
/// robust than any single predictor but correspondingly more expensive, since
/// every member must be evaluated per lookup.
pub struct EnsemblePredictor {
    members: Vec<Box<dyn AccuracyPredictor + Send + Sync>>,
}

impl EnsemblePredictor {
    /// Creates an ensemble over the given members.
    ///
    /// # Panics
    ///
    /// Panics if `members` is empty.
    pub fn new(members: Vec<Box<dyn AccuracyPredictor + Send + Sync>>) -> Self {
        assert!(!members.is_empty(), "ensemble needs at least one member");
        Self { members }
    }

    /// Number of member predictors.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the ensemble has no members (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }
}

impl std::fmt::Debug for EnsemblePredictor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EnsemblePredictor")
            .field("members", &self.members.len())
            .finish()
    }
}

impl AccuracyPredictor for EnsemblePredictor {
    fn name(&self) -> &'static str {
        "ensemble"
    }

    fn predict(&self, model: ModelId, confidence: f64) -> Vec<Prediction> {
        let mut sums: BTreeMap<ModelId, (f64, f64, usize)> = BTreeMap::new();
        for member in &self.members {
            for prediction in member.predict(model, confidence) {
                let entry = sums.entry(prediction.model).or_insert((0.0, 0.0, 0));
                entry.0 += prediction.accuracy;
                entry.1 += prediction.distance;
                entry.2 += 1;
            }
        }
        sums.into_iter()
            .map(|(m, (acc, dist, count))| Prediction {
                model: m,
                accuracy: acc / count as f64,
                distance: dist / count as f64,
            })
            .collect()
    }
}

/// Evaluates a predictor's accuracy-prediction error over held-out samples.
///
/// For every sample and every source model that produced a detection, the
/// predictor is asked to predict all models' accuracies from that source
/// model's confidence; the absolute error against the measured IoU of each
/// target model is accumulated. Returns the mean absolute error, or `None`
/// when no (sample, source, target) triple was evaluable.
pub fn prediction_mae<P: AccuracyPredictor + ?Sized>(
    predictor: &P,
    samples: &[SampleObservation],
) -> Option<f64> {
    let mut total_error = 0.0;
    let mut count = 0usize;
    for sample in samples {
        for (&source, observation) in &sample.per_model {
            if !observation.detected {
                continue;
            }
            for prediction in predictor.predict(source, observation.confidence) {
                let Some(actual) = sample.per_model.get(&prediction.model) else {
                    continue;
                };
                total_error += (prediction.accuracy - actual.iou).abs();
                count += 1;
            }
        }
    }
    if count == 0 {
        None
    } else {
        Some(total_error / count as f64)
    }
}

fn models_in(samples: &[SampleObservation]) -> Vec<ModelId> {
    let mut models: Vec<ModelId> = samples
        .iter()
        .flat_map(|s| s.per_model.keys().copied())
        .collect();
    models.sort();
    models.dedup();
    models
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::characterize::characterize;
    use crate::graph::GraphConfig;
    use shift_models::{ModelZoo, ResponseModel};
    use shift_soc::{ExecutionEngine, Platform};
    use shift_video::CharacterizationDataset;

    fn samples() -> Vec<SampleObservation> {
        let engine = ExecutionEngine::new(
            Platform::xavier_nx_with_oak(),
            ModelZoo::standard(),
            ResponseModel::new(4),
        );
        characterize(&engine, &CharacterizationDataset::generate(150, 9)).samples
    }

    #[test]
    fn linear_fit_recovers_a_line() {
        let points: Vec<(f64, f64)> = (0..20)
            .map(|i| (i as f64 / 20.0, 0.5 * i as f64 / 20.0 + 0.1))
            .collect();
        let fit = LinearFit::fit(&points);
        assert!((fit.slope - 0.5).abs() < 1e-9);
        assert!((fit.intercept - 0.1).abs() < 1e-9);
        assert!((fit.eval(0.4) - 0.3).abs() < 1e-9);
    }

    #[test]
    fn linear_fit_handles_degenerate_inputs() {
        let empty = LinearFit::fit(&[]);
        assert_eq!(empty.eval(0.7), 0.0);
        let constant = LinearFit::fit(&[(0.5, 0.4), (0.5, 0.6)]);
        assert!((constant.eval(0.1) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn passthrough_predicts_the_same_accuracy_for_every_model() {
        let predictor = PassthroughPredictor::from_samples(&samples());
        let predictions = predictor.predict(ModelId::YoloV7, 0.7);
        assert_eq!(predictions.len(), 8);
        assert!(predictions.iter().all(|p| (p.accuracy - 0.7).abs() < 1e-12));
        assert!(predictor.predict(ModelId::YoloV7, 1.5)[0].accuracy <= 1.0);
    }

    #[test]
    fn regression_covers_all_models_and_stays_in_bounds() {
        let samples = samples();
        let predictor = RegressionPredictor::fit(&samples);
        assert_eq!(predictor.models().len(), 8);
        for confidence in [0.0, 0.3, 0.6, 0.9, 1.0] {
            let predictions = predictor.predict(ModelId::YoloV7Tiny, confidence);
            assert_eq!(predictions.len(), 8);
            for p in predictions {
                assert!(p.accuracy >= 0.0 && p.accuracy <= 1.0);
            }
        }
    }

    #[test]
    fn unknown_model_yields_empty_predictions() {
        let predictor = PassthroughPredictor::new(vec![ModelId::YoloV7]);
        assert!(predictor.predict(ModelId::SsdResnet50, 0.5).is_empty());
        let regression = RegressionPredictor::fit(&[]);
        assert!(regression.predict(ModelId::YoloV7, 0.5).is_empty());
    }

    #[test]
    fn graph_beats_passthrough_on_prediction_error() {
        let samples = samples();
        let graph = ConfidenceGraph::build(&samples, GraphConfig::paper_defaults());
        let passthrough = PassthroughPredictor::from_samples(&samples);
        let graph_mae = prediction_mae(&graph, &samples).expect("graph evaluable");
        let passthrough_mae =
            prediction_mae(&passthrough, &samples).expect("passthrough evaluable");
        assert!(
            graph_mae < passthrough_mae,
            "confidence graph ({graph_mae:.3}) should out-predict raw confidence passthrough \
             ({passthrough_mae:.3})"
        );
    }

    #[test]
    fn regression_beats_passthrough_on_prediction_error() {
        let samples = samples();
        let regression = RegressionPredictor::fit(&samples);
        let passthrough = PassthroughPredictor::from_samples(&samples);
        let regression_mae = prediction_mae(&regression, &samples).unwrap();
        let passthrough_mae = prediction_mae(&passthrough, &samples).unwrap();
        assert!(regression_mae < passthrough_mae);
    }

    #[test]
    fn ensemble_averages_members() {
        let samples = samples();
        let ensemble = EnsemblePredictor::new(vec![
            Box::new(ConfidenceGraph::build(
                &samples,
                GraphConfig::paper_defaults(),
            )),
            Box::new(PassthroughPredictor::from_samples(&samples)),
        ]);
        assert_eq!(ensemble.len(), 2);
        assert!(!ensemble.is_empty());
        let predictions = ensemble.predict(ModelId::YoloV7, 0.8);
        assert!(!predictions.is_empty());
        for p in predictions {
            assert!(p.accuracy >= 0.0 && p.accuracy <= 1.0);
        }
        assert_eq!(ensemble.name(), "ensemble");
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_ensemble_panics() {
        let _ = EnsemblePredictor::new(Vec::new());
    }

    #[test]
    fn prediction_mae_is_none_for_empty_inputs() {
        let predictor = PassthroughPredictor::new(vec![ModelId::YoloV7]);
        assert!(prediction_mae(&predictor, &[]).is_none());
    }

    #[test]
    fn predictor_names_are_distinct() {
        let samples = samples();
        let graph = ConfidenceGraph::build(&samples, GraphConfig::paper_defaults());
        let regression = RegressionPredictor::fit(&samples);
        let passthrough = PassthroughPredictor::from_samples(&samples);
        let names = [graph.name(), regression.name(), passthrough.name()];
        let unique: std::collections::BTreeSet<_> = names.iter().collect();
        assert_eq!(unique.len(), names.len());
    }
}
