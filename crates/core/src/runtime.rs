//! The end-to-end SHIFT runtime: per-frame loop combining context detection,
//! scheduling, dynamic model loading and execution on the simulated SoC.

use crate::characterize::Characterization;
use crate::config::ShiftConfig;
use crate::context::ContextDetector;
use crate::graph::ConfidenceGraph;
use crate::loader::DynamicModelLoader;
use crate::scheduler::{CandidatePair, Scheduler};
use crate::ShiftError;
use serde::{Deserialize, Serialize};
use shift_models::Detection;
use shift_soc::ExecutionEngine;
use shift_video::Frame;
use std::collections::BTreeSet;

/// Everything that happened while processing one frame.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrameOutcome {
    /// Index of the frame within its stream.
    pub frame_index: usize,
    /// The (model, accelerator) pair that executed the frame.
    pub pair: CandidatePair,
    /// The detection the model reported, if any.
    pub detection: Option<Detection>,
    /// The confidence of that detection (0 when nothing was detected).
    pub confidence: f64,
    /// IoU of the detection against ground truth (0 for misses).
    pub iou: f64,
    /// Whether the frame counts as a success (IoU >= 0.5).
    pub success: bool,
    /// End-to-end latency charged to the frame: scheduler overhead + any
    /// model-load time + inference latency, seconds.
    pub latency_s: f64,
    /// Energy charged to the frame, joules.
    pub energy_j: f64,
    /// Whether a model/accelerator swap (load) happened on this frame.
    pub swapped: bool,
    /// Whether a full re-scheduling pass ran on this frame.
    pub rescheduled: bool,
    /// The context-similarity score observed for this frame.
    pub similarity: f64,
}

/// The SHIFT runtime.
///
/// Construction performs the *online-side* setup only: the confidence graph
/// is built from a pre-computed [`Characterization`], the scheduler and the
/// dynamic model loader are initialized, and the initial model is pre-loaded
/// onto its accelerator (charged to the first frame).
///
/// See the crate-level example for end-to-end usage.
#[derive(Debug, Clone)]
pub struct ShiftRuntime {
    engine: ExecutionEngine,
    scheduler: Scheduler,
    loader: DynamicModelLoader,
    detector: ContextDetector,
    current: CandidatePair,
    last_confidence: f64,
    last_detection: Option<Detection>,
    pending_load_time_s: f64,
    pending_load_energy_j: f64,
    pairs_used: BTreeSet<CandidatePair>,
    swap_count: u64,
}

impl ShiftRuntime {
    /// Builds a runtime from an engine, an offline characterization and a
    /// configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ShiftError::EmptyCharacterization`] when the
    /// characterization has no samples and [`ShiftError::NoCandidatePairs`]
    /// when no model can run on any allowed accelerator.
    pub fn new(
        engine: ExecutionEngine,
        characterization: &Characterization,
        config: ShiftConfig,
    ) -> Result<Self, ShiftError> {
        if characterization.is_empty() {
            return Err(ShiftError::EmptyCharacterization);
        }
        let graph = ConfidenceGraph::build(&characterization.samples, config.graph_config());
        let scheduler = Scheduler::new(config, characterization, graph)?;
        let current = scheduler.initial_pair();
        let mut runtime = Self {
            engine,
            scheduler,
            loader: DynamicModelLoader::new(),
            detector: ContextDetector::new(),
            current,
            last_confidence: 0.0,
            last_detection: None,
            pending_load_time_s: 0.0,
            pending_load_energy_j: 0.0,
            pairs_used: BTreeSet::new(),
            swap_count: 0,
        };
        // Make the initial model resident; its load cost is charged to the
        // first processed frame.
        let outcome = runtime
            .loader
            .ensure_loaded(&mut runtime.engine, current)
            .map_err(ShiftError::from)?;
        runtime.pending_load_time_s = outcome.load_time_s;
        runtime.pending_load_energy_j = outcome.load_energy_j;
        Ok(runtime)
    }

    /// The pair currently selected for execution.
    pub fn current_pair(&self) -> CandidatePair {
        self.current
    }

    /// The scheduler (for inspection in tests and ablations).
    pub fn scheduler(&self) -> &Scheduler {
        &self.scheduler
    }

    /// The execution engine (for inspecting telemetry).
    pub fn engine(&self) -> &ExecutionEngine {
        &self.engine
    }

    /// Number of model/accelerator swaps performed so far.
    pub fn swap_count(&self) -> u64 {
        self.swap_count
    }

    /// Distinct (model, accelerator) pairs used so far.
    pub fn pairs_used(&self) -> usize {
        self.pairs_used.len()
    }

    /// Processes a single frame: schedule, (re)load if needed, run inference,
    /// update context history.
    ///
    /// # Errors
    ///
    /// Propagates loading and execution errors from the SoC simulator.
    pub fn process_frame(&mut self, frame: &Frame) -> Result<FrameOutcome, ShiftError> {
        let config = self.scheduler.config().clone();

        // --- Context detection and scheduling. ---
        let similarity = self
            .detector
            .similarity(frame, self.last_detection_bbox().as_ref());
        let decision = self
            .scheduler
            .schedule(self.current, self.last_confidence, similarity);

        // --- Dynamic model loading. ---
        let mut load_time = std::mem::take(&mut self.pending_load_time_s);
        let mut load_energy = std::mem::take(&mut self.pending_load_energy_j);
        let mut swapped = false;
        if decision.pair != self.current
            || !self
                .engine
                .is_loaded(decision.pair.model, decision.pair.accelerator)
        {
            let outcome = self.loader.ensure_loaded(&mut self.engine, decision.pair)?;
            load_time += outcome.load_time_s;
            load_energy += outcome.load_energy_j;
            if decision.pair != self.current || outcome.loaded {
                swapped = true;
                self.swap_count += 1;
            }
        } else {
            self.loader.touch(decision.pair);
        }
        self.current = decision.pair;
        self.pairs_used.insert(decision.pair);

        // --- Inference. ---
        let report =
            self.engine
                .run_inference(decision.pair.model, decision.pair.accelerator, frame)?;
        let detection = report.result.detection;
        let confidence = report.result.confidence();
        let iou = report.result.iou_against(frame.truth.as_ref());

        // --- Bookkeeping for the next frame. ---
        self.detector
            .update(frame, detection.as_ref().map(|d| &d.bbox));
        self.last_confidence = confidence;
        self.last_detection = detection;

        Ok(FrameOutcome {
            frame_index: frame.index,
            pair: decision.pair,
            detection,
            confidence,
            iou,
            success: iou >= 0.5,
            latency_s: config.scheduler_overhead_s + load_time + report.latency_s,
            energy_j: config.scheduler_overhead_energy_j() + load_energy + report.energy_j,
            swapped,
            rescheduled: decision.rescheduled,
            similarity: decision.similarity,
        })
    }

    /// Runs the runtime over an entire frame stream.
    ///
    /// # Errors
    ///
    /// Propagates the first error encountered while processing a frame.
    pub fn run<I>(&mut self, frames: I) -> Result<Vec<FrameOutcome>, ShiftError>
    where
        I: IntoIterator<Item = Frame>,
    {
        let mut outcomes = Vec::new();
        for frame in frames {
            outcomes.push(self.process_frame(&frame)?);
        }
        Ok(outcomes)
    }

    fn last_detection_bbox(&self) -> Option<shift_video::BoundingBox> {
        self.last_detection.map(|d| d.bbox)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::characterize::characterize;
    use shift_models::{ModelId, ModelZoo, ResponseModel};
    use shift_soc::{AcceleratorId, Platform};
    use shift_video::{CharacterizationDataset, Scenario};

    fn runtime(config: ShiftConfig) -> ShiftRuntime {
        let engine = ExecutionEngine::new(
            Platform::xavier_nx_with_oak(),
            ModelZoo::standard(),
            ResponseModel::new(6),
        );
        let characterization = characterize(&engine, &CharacterizationDataset::generate(200, 12));
        ShiftRuntime::new(engine, &characterization, config).expect("runtime builds")
    }

    #[test]
    fn runtime_processes_a_short_scenario() {
        let mut rt = runtime(ShiftConfig::paper_defaults());
        let outcomes = rt
            .run(Scenario::scenario_3().with_num_frames(40).stream())
            .unwrap();
        assert_eq!(outcomes.len(), 40);
        for o in &outcomes {
            assert!(o.latency_s > 0.0);
            assert!(o.energy_j > 0.0);
            assert!((0.0..=1.0).contains(&o.iou));
            assert_eq!(o.success, o.iou >= 0.5);
        }
        assert!(rt.pairs_used() >= 1);
    }

    #[test]
    fn first_frame_carries_the_initial_load_cost() {
        let mut rt = runtime(ShiftConfig::paper_defaults());
        let frames: Vec<_> = Scenario::scenario_3().with_num_frames(5).stream().collect();
        let first = rt.process_frame(&frames[0]).unwrap();
        let second = rt.process_frame(&frames[1]).unwrap();
        assert!(
            first.latency_s > second.latency_s,
            "first frame pays the initial model load ({} vs {})",
            first.latency_s,
            second.latency_s
        );
    }

    #[test]
    fn easy_scenario_settles_on_a_cheap_model() {
        // Scenario 3 is a close-range hover on a plain background: after the
        // initial frames SHIFT should migrate away from the expensive
        // YoloV7-on-GPU configuration.
        let mut rt = runtime(ShiftConfig::paper_defaults());
        let outcomes = rt
            .run(Scenario::scenario_3().with_num_frames(120).stream())
            .unwrap();
        let later = &outcomes[60..];
        let yolo_full_gpu = later
            .iter()
            .filter(|o| o.pair.model == ModelId::YoloV7 && o.pair.accelerator == AcceleratorId::Gpu)
            .count();
        assert!(
            yolo_full_gpu < later.len(),
            "SHIFT should not stay pinned to YoloV7-on-GPU on an easy scenario"
        );
        let mean_energy: f64 = later.iter().map(|o| o.energy_j).sum::<f64>() / later.len() as f64;
        assert!(
            mean_energy < 1.9,
            "steady-state energy should drop below the YoloV7-GPU cost, got {mean_energy}"
        );
    }

    #[test]
    fn accuracy_is_maintained_on_easy_scenarios() {
        let mut rt = runtime(ShiftConfig::paper_defaults());
        let outcomes = rt
            .run(Scenario::scenario_3().with_num_frames(150).stream())
            .unwrap();
        let success_rate =
            outcomes.iter().filter(|o| o.success).count() as f64 / outcomes.len() as f64;
        assert!(
            success_rate > 0.6,
            "easy scenario success rate too low: {success_rate}"
        );
    }

    #[test]
    fn swaps_are_counted_and_bounded() {
        let mut rt = runtime(ShiftConfig::paper_defaults());
        let outcomes = rt
            .run(Scenario::scenario_1().with_num_frames(200).stream())
            .unwrap();
        let swaps = outcomes.iter().filter(|o| o.swapped).count() as u64;
        assert_eq!(swaps, rt.swap_count());
        assert!(
            swaps < outcomes.len() as u64 / 2,
            "swapping every other frame would defeat the similarity gate"
        );
    }

    #[test]
    fn scheduler_overhead_is_charged_every_frame() {
        let config = ShiftConfig::paper_defaults();
        let overhead = config.scheduler_overhead_s;
        let mut rt = runtime(config);
        let outcomes = rt
            .run(Scenario::scenario_3().with_num_frames(10).stream())
            .unwrap();
        for o in outcomes {
            assert!(o.latency_s >= overhead);
        }
    }

    #[test]
    fn empty_characterization_is_rejected() {
        let engine = ExecutionEngine::new(
            Platform::xavier_nx_with_oak(),
            ModelZoo::standard(),
            ResponseModel::new(6),
        );
        let empty = Characterization {
            traits: Default::default(),
            samples: Vec::new(),
        };
        let err = ShiftRuntime::new(engine, &empty, ShiftConfig::paper_defaults()).unwrap_err();
        assert_eq!(err, ShiftError::EmptyCharacterization);
    }

    #[test]
    fn determinism_across_identical_runs() {
        let a = {
            let mut rt = runtime(ShiftConfig::paper_defaults());
            rt.run(Scenario::scenario_2().with_num_frames(80).stream())
                .unwrap()
        };
        let b = {
            let mut rt = runtime(ShiftConfig::paper_defaults());
            rt.run(Scenario::scenario_2().with_num_frames(80).stream())
                .unwrap()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn multi_accelerator_usage_emerges() {
        let mut rt = runtime(ShiftConfig::paper_defaults());
        let outcomes = rt
            .run(Scenario::scenario_1().with_num_frames(300).stream())
            .unwrap();
        let non_gpu = outcomes
            .iter()
            .filter(|o| o.pair.accelerator != AcceleratorId::Gpu)
            .count();
        assert!(
            non_gpu > 0,
            "SHIFT should route at least some frames off the GPU"
        );
    }
}
