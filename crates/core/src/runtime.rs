//! The end-to-end SHIFT runtime: per-frame loop combining context detection,
//! scheduling, dynamic model loading and execution on the simulated SoC.
//!
//! The per-stream half of the loop (context detection, scheduling, momentum,
//! outcome bookkeeping) lives in [`StreamAgent`], so it can be driven either
//! by [`ShiftRuntime`] — one stream owning one engine — or by
//! [`FleetRuntime`](crate::fleet::FleetRuntime), which multiplexes many
//! agents over one shared engine. `ShiftRuntime` is the single-stream
//! special case.

use crate::characterize::Characterization;
use crate::config::ShiftConfig;
use crate::context::ContextDetector;
use crate::graph::ConfidenceGraph;
use crate::loader::DynamicModelLoader;
use crate::scheduler::{CandidatePair, Decision, Scheduler};
use crate::ShiftError;
use serde::{Deserialize, Serialize};
use shift_models::Detection;
use shift_soc::{ExecutionEngine, FaultInjector, FaultPlan, InferenceReport, SocError};
use shift_video::Frame;
use std::collections::BTreeSet;

/// Everything that happened while processing one frame.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrameOutcome {
    /// Index of the frame within its stream.
    pub frame_index: usize,
    /// The (model, accelerator) pair that executed the frame.
    pub pair: CandidatePair,
    /// The detection the model reported, if any.
    pub detection: Option<Detection>,
    /// The confidence of that detection (0 when nothing was detected).
    pub confidence: f64,
    /// IoU of the detection against ground truth (0 for misses).
    pub iou: f64,
    /// Whether the frame counts as a success (IoU >= 0.5).
    pub success: bool,
    /// End-to-end latency charged to the frame: scheduler overhead + any
    /// model-load time + inference latency, seconds.
    pub latency_s: f64,
    /// Energy charged to the frame, joules.
    pub energy_j: f64,
    /// Whether a model/accelerator swap (load) happened on this frame.
    pub swapped: bool,
    /// Whether a full re-scheduling pass ran on this frame.
    pub rescheduled: bool,
    /// The context-similarity score observed for this frame.
    pub similarity: f64,
}

/// The load cost (and swap flag) charged to one executed frame.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct LoadCharge {
    /// Model-load time charged to the frame, seconds.
    pub time_s: f64,
    /// Model-load energy charged to the frame, joules.
    pub energy_j: f64,
    /// Whether the frame performed a model/accelerator swap.
    pub swapped: bool,
}

/// Whether the decided pair is unusable because of an injected fault on its
/// *own* resources — a dropped-out (administratively fenced) accelerator or
/// a squeezed pool — as opposed to a coincident thermal trip or peer memory
/// contention, which are not injected-fault exposure. Used to attribute the
/// resilience counters precisely while another, unrelated fault window
/// (e.g. a telemetry glitch) is active.
pub(crate) fn fault_on_decided_pair(engine: &ExecutionEngine, decided: CandidatePair) -> bool {
    engine.is_administratively_offline(decided.accelerator)
        || engine.memory_reservation(decided.accelerator) > 0.0
}

/// Whether `pair`'s model is already resident, or could fit its
/// accelerator's pool even when empty (accounting for any fault-injected
/// reservation). Degrade walks check this before `ensure_loaded`, whose
/// eviction loop would otherwise empty the pool on a doomed candidate
/// before reporting `OutOfMemory`.
pub(crate) fn can_ever_fit(engine: &ExecutionEngine, pair: CandidatePair) -> bool {
    if engine.is_loaded(pair.model, pair.accelerator) {
        return true;
    }
    let Some(spec) = engine.zoo().get(pair.model) else {
        return false;
    };
    engine
        .pool(pair.accelerator)
        .map(|pool| pool.can_ever_fit(spec.load.memory_mb))
        .unwrap_or(false)
}

/// Per-stream counters describing how a run observed and survived injected
/// platform faults. All zero on a healthy run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResilienceCounters {
    /// Frames processed while at least one fault was active on the platform.
    pub fault_frames: u64,
    /// Forced full re-scheduling passes taken because the gate-kept pair's
    /// accelerator was offline *while an injected fault was active*. The
    /// same survival path also fires for thermal trips, but those are not
    /// injected-fault exposure and are not counted.
    pub fault_replans: u64,
    /// Frames executed on a pair other than the one the scheduler decided
    /// because an injected fault sat on the decided pair's *own* resources —
    /// a dropped-out accelerator or a squeezed pool. (Degradation from
    /// ordinary memory contention — a fleet peer pin-blocking a pool — or a
    /// coincident thermal trip is not fault exposure and is deliberately not
    /// counted, even while an unrelated fault window is active.)
    pub degraded_frames: u64,
}

/// The per-stream half of the SHIFT loop: context detection, scheduling and
/// outcome bookkeeping for **one** video stream, without owning an engine.
///
/// [`ShiftRuntime`] pairs one agent with its own [`ExecutionEngine`];
/// [`FleetRuntime`](crate::fleet::FleetRuntime) multiplexes many agents over
/// a single shared engine. A frame flows through an agent in two phases:
/// [`decide`](Self::decide) produces the scheduling decision, the driver
/// loads the model and runs inference on whatever engine it manages, and
/// [`complete`](Self::complete) folds the execution report back into the
/// agent's state and produces the [`FrameOutcome`].
#[derive(Debug, Clone)]
pub struct StreamAgent {
    scheduler: Scheduler,
    detector: ContextDetector,
    current: CandidatePair,
    last_confidence: f64,
    last_detection: Option<Detection>,
    pending_load_time_s: f64,
    pending_load_energy_j: f64,
    pairs_used: BTreeSet<CandidatePair>,
    swap_count: u64,
}

impl StreamAgent {
    /// Builds an agent from an offline characterization and a configuration.
    /// The initial pair is selected but **not** loaded — the driver decides
    /// when and on which engine to make it resident (see
    /// [`charge_pending_load`](Self::charge_pending_load)).
    ///
    /// # Errors
    ///
    /// Returns [`ShiftError::EmptyCharacterization`] when the
    /// characterization has no samples and [`ShiftError::NoCandidatePairs`]
    /// when no model can run on any allowed accelerator.
    pub fn new(
        characterization: &Characterization,
        config: ShiftConfig,
    ) -> Result<Self, ShiftError> {
        if characterization.is_empty() {
            return Err(ShiftError::EmptyCharacterization);
        }
        let graph = ConfidenceGraph::build(&characterization.samples, config.graph_config());
        let scheduler = Scheduler::new(config, characterization, graph)?;
        let current = scheduler.initial_pair();
        Ok(Self {
            scheduler,
            detector: ContextDetector::new(),
            current,
            last_confidence: 0.0,
            last_detection: None,
            pending_load_time_s: 0.0,
            pending_load_energy_j: 0.0,
            pairs_used: BTreeSet::new(),
            swap_count: 0,
        })
    }

    /// The pair currently selected for execution.
    pub fn current_pair(&self) -> CandidatePair {
        self.current
    }

    /// The scheduler (for inspection in tests and ablations).
    pub fn scheduler(&self) -> &Scheduler {
        &self.scheduler
    }

    /// The configuration the agent was built with.
    pub fn config(&self) -> &ShiftConfig {
        self.scheduler.config()
    }

    /// Number of model/accelerator swaps performed so far.
    pub fn swap_count(&self) -> u64 {
        self.swap_count
    }

    /// Distinct (model, accelerator) pairs used so far.
    pub fn pairs_used(&self) -> usize {
        self.pairs_used.len()
    }

    /// Adds a load cost to be charged to the next processed frame (used for
    /// the initial model pre-load, which happens before any frame exists).
    pub fn charge_pending_load(&mut self, time_s: f64, energy_j: f64) {
        self.pending_load_time_s += time_s;
        self.pending_load_energy_j += energy_j;
    }

    /// Takes (and clears) the pending load cost accumulated so far.
    pub fn take_pending_load(&mut self) -> (f64, f64) {
        (
            std::mem::take(&mut self.pending_load_time_s),
            std::mem::take(&mut self.pending_load_energy_j),
        )
    }

    /// Phase one of a frame: computes the context similarity against the
    /// previous frame and runs the scheduling heuristic.
    pub fn decide(&mut self, frame: &Frame) -> Decision {
        let similarity = self
            .detector
            .similarity(frame, self.last_detection.map(|d| d.bbox).as_ref());
        self.scheduler
            .schedule(self.current, self.last_confidence, similarity)
    }

    /// Re-plans a frame after the driver observed that `decision`'s pair is
    /// unusable (its accelerator dropped out): runs the full re-scheduling
    /// pass of Algorithm 1 unconditionally, bypassing the similarity gate, so
    /// the driver gets a complete score ranking to degrade along. The context
    /// similarity already computed by [`decide`](Self::decide) is reused.
    pub fn replan(&mut self, decision: &Decision) -> Decision {
        self.scheduler
            .force_reschedule(self.current, self.last_confidence, decision.similarity)
    }

    /// Phase two of a frame: folds the executed pair, the inference report
    /// and the charged load cost back into the agent and produces the
    /// [`FrameOutcome`]. `pair` is the pair that actually executed (the fleet
    /// may have downgraded the decision under memory pressure);
    /// `queue_wait_s` is any cross-stream queueing delay charged on top.
    pub fn complete(
        &mut self,
        frame: &Frame,
        pair: CandidatePair,
        decision: &Decision,
        report: &InferenceReport,
        load: LoadCharge,
        queue_wait_s: f64,
    ) -> FrameOutcome {
        if load.swapped {
            self.swap_count += 1;
        }
        self.current = pair;
        self.pairs_used.insert(pair);

        let detection = report.result.detection;
        let confidence = report.result.confidence();
        let iou = report.result.iou_against(frame.truth.as_ref());

        self.detector
            .update(frame, detection.as_ref().map(|d| &d.bbox));
        self.last_confidence = confidence;
        self.last_detection = detection;

        let config = self.scheduler.config();
        FrameOutcome {
            frame_index: frame.index,
            pair,
            detection,
            confidence,
            iou,
            success: iou >= 0.5,
            latency_s: queue_wait_s + config.scheduler_overhead_s + load.time_s + report.latency_s,
            energy_j: config.scheduler_overhead_energy_j() + load.energy_j + report.energy_j,
            swapped: load.swapped,
            rescheduled: decision.rescheduled,
            similarity: decision.similarity,
        }
    }
}

/// The SHIFT runtime.
///
/// Construction performs the *online-side* setup only: the confidence graph
/// is built from a pre-computed [`Characterization`], the scheduler and the
/// dynamic model loader are initialized, and the initial model is pre-loaded
/// onto its accelerator (charged to the first frame).
///
/// Internally the runtime is one [`StreamAgent`] bound to its own engine and
/// loader; [`FleetRuntime`](crate::fleet::FleetRuntime) composes many agents
/// over one shared engine.
///
/// See the crate-level example for end-to-end usage.
#[derive(Debug, Clone)]
pub struct ShiftRuntime {
    engine: ExecutionEngine,
    loader: DynamicModelLoader,
    agent: StreamAgent,
    /// Optional scripted fault injector, advanced once per frame.
    injector: Option<FaultInjector>,
    resilience: ResilienceCounters,
}

impl ShiftRuntime {
    /// Builds a runtime from an engine, an offline characterization and a
    /// configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ShiftError::EmptyCharacterization`] when the
    /// characterization has no samples and [`ShiftError::NoCandidatePairs`]
    /// when no model can run on any allowed accelerator.
    pub fn new(
        engine: ExecutionEngine,
        characterization: &Characterization,
        config: ShiftConfig,
    ) -> Result<Self, ShiftError> {
        let agent = StreamAgent::new(characterization, config)?;
        let mut runtime = Self {
            engine,
            loader: DynamicModelLoader::new(),
            agent,
            injector: None,
            resilience: ResilienceCounters::default(),
        };
        // Make the initial model resident; its load cost is charged to the
        // first processed frame.
        let outcome = runtime
            .loader
            .ensure_loaded(&mut runtime.engine, runtime.agent.current_pair())
            .map_err(ShiftError::from)?;
        runtime
            .agent
            .charge_pending_load(outcome.load_time_s, outcome.load_energy_j);
        Ok(runtime)
    }

    /// Attaches a scripted fault plan: the injector is advanced once per
    /// processed frame (keyed on the frame index) and applies every fault
    /// through the engine's degradation surfaces. A zero-fault plan leaves
    /// every outcome bit-identical to a run without one.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.injector = Some(FaultInjector::new(plan));
        self
    }

    /// The fault injector, when a plan is attached.
    pub fn fault_injector(&self) -> Option<&FaultInjector> {
        self.injector.as_ref()
    }

    /// Counters describing how the run observed and survived injected
    /// faults (all zero on a healthy run).
    pub fn resilience(&self) -> ResilienceCounters {
        self.resilience
    }

    /// The pair currently selected for execution.
    pub fn current_pair(&self) -> CandidatePair {
        self.agent.current_pair()
    }

    /// The scheduler (for inspection in tests and ablations).
    pub fn scheduler(&self) -> &Scheduler {
        self.agent.scheduler()
    }

    /// The execution engine (for inspecting telemetry).
    pub fn engine(&self) -> &ExecutionEngine {
        &self.engine
    }

    /// Number of model/accelerator swaps performed so far.
    pub fn swap_count(&self) -> u64 {
        self.agent.swap_count()
    }

    /// Number of full re-scheduling passes (Algorithm 1 decisions) performed
    /// so far. Frames where the NCC similarity gate kept the current model
    /// do not count, so on a stable scene this stays well below the frame
    /// count while a scene-cut burst drives it up.
    pub fn reschedule_count(&self) -> u64 {
        self.agent.scheduler().reschedule_count()
    }

    /// Distinct (model, accelerator) pairs used so far.
    pub fn pairs_used(&self) -> usize {
        self.agent.pairs_used()
    }

    /// Processes a single frame: advance any scripted faults, schedule
    /// (re-planning when the decided pair's accelerator dropped out),
    /// (re)load — degrading to the next-best loadable pair under memory
    /// pressure or dropout — run inference, update context history.
    ///
    /// # Errors
    ///
    /// Propagates unrecoverable loading and execution errors from the SoC
    /// simulator (a fault that leaves *no* candidate pair usable surfaces
    /// the decided pair's error).
    pub fn process_frame(&mut self, frame: &Frame) -> Result<FrameOutcome, ShiftError> {
        // --- Scripted platform faults land at the frame boundary. ---
        let mut fault_active = false;
        if let Some(injector) = self.injector.as_mut() {
            injector.advance(frame.index as u64, &mut self.engine);
            fault_active = injector.is_fault_active();
            if fault_active {
                self.resilience.fault_frames += 1;
            }
        }

        // --- Context detection and scheduling. ---
        let mut decision = self.agent.decide(frame);
        if !self.engine.is_online(decision.pair.accelerator) && decision.scores.is_empty() {
            // The similarity gate kept a pair whose accelerator is gone: run
            // the full Algorithm 1 pass so the load path below has a
            // complete score ranking to degrade along. When the decision
            // already carries scores (a natural re-schedule picked the
            // offline pair), re-running the pass would double-push the same
            // predictions into the momentum buffers — the existing ranking
            // is used as-is instead. The counter only attributes the re-plan
            // to the fault subsystem when the kept pair's own accelerator is
            // fault-dropped (a thermal trip triggers the same survival path
            // but is not injected-fault exposure, even while an unrelated
            // fault window is active).
            let dropped = fault_active
                && self
                    .engine
                    .is_administratively_offline(decision.pair.accelerator);
            decision = self.agent.replan(&decision);
            if dropped {
                self.resilience.fault_replans += 1;
            }
        }

        // --- Dynamic model loading (with fault degradation). ---
        let current = self.agent.current_pair();
        let (mut load_time, mut load_energy) = self.agent.take_pending_load();
        let (pair, charge) = self.acquire_pair(&decision, current)?;
        if pair != decision.pair
            && fault_active
            && fault_on_decided_pair(&self.engine, decision.pair)
        {
            self.resilience.degraded_frames += 1;
        }
        load_time += charge.time_s;
        load_energy += charge.energy_j;
        let swapped = pair != current || charge.swapped;

        // --- Inference. ---
        let report = self
            .engine
            .run_inference(pair.model, pair.accelerator, frame)?;

        // --- Bookkeeping for the next frame. ---
        let load = LoadCharge {
            time_s: load_time,
            energy_j: load_energy,
            swapped,
        };
        Ok(self
            .agent
            .complete(frame, pair, &decision, &report, load, 0.0))
    }

    /// Makes the decided pair — or, when it is offline or memory-blocked,
    /// the best loadable fallback — resident. Candidates are tried in score
    /// order, then the incumbent pair. On a healthy platform this reduces
    /// exactly to "load the decided pair", so healthy runs are bit-identical
    /// to the pre-fault-injection behaviour.
    fn acquire_pair(
        &mut self,
        decision: &Decision,
        current: CandidatePair,
    ) -> Result<(CandidatePair, LoadCharge), ShiftError> {
        if decision.pair == current
            && self.engine.is_loaded(current.model, current.accelerator)
            && self.engine.is_online(current.accelerator)
        {
            self.loader.touch(current);
            return Ok((current, LoadCharge::default()));
        }
        if let Some(charge) = self.try_load(decision.pair)? {
            return Ok((decision.pair, charge));
        }
        // The decided pair is unusable: walk the remaining candidates in
        // score order, then fall back to the incumbent.
        for pair in decision.fallback_candidates(current) {
            if let Some(charge) = self.try_load(pair)? {
                return Ok((pair, charge));
            }
        }
        // Nothing is loadable: surface the decided pair's real error.
        let outcome = self.loader.ensure_loaded(&mut self.engine, decision.pair)?;
        Ok((
            decision.pair,
            LoadCharge {
                time_s: outcome.load_time_s,
                energy_j: outcome.load_energy_j,
                swapped: outcome.loaded,
            },
        ))
    }

    /// Tries to make one candidate resident; `None` when the candidate is
    /// unusable right now (offline, incompatible, or memory-blocked).
    fn try_load(&mut self, pair: CandidatePair) -> Result<Option<LoadCharge>, ShiftError> {
        if !self.engine.is_online(pair.accelerator) {
            return Ok(None);
        }
        if !can_ever_fit(&self.engine, pair) {
            // A model that cannot fit the (possibly squeezed) pool even
            // empty would make `ensure_loaded` evict every resident model
            // before failing; skip it without touching the pool.
            return Ok(None);
        }
        match self.loader.ensure_loaded(&mut self.engine, pair) {
            Ok(outcome) => Ok(Some(LoadCharge {
                time_s: outcome.load_time_s,
                energy_j: outcome.load_energy_j,
                swapped: outcome.loaded,
            })),
            Err(
                SocError::OutOfMemory { .. }
                | SocError::IncompatiblePair { .. }
                | SocError::AcceleratorOffline(_),
            ) => Ok(None),
            Err(other) => Err(other.into()),
        }
    }

    /// Runs the runtime over an entire frame stream.
    ///
    /// # Errors
    ///
    /// Propagates the first error encountered while processing a frame.
    pub fn run<I>(&mut self, frames: I) -> Result<Vec<FrameOutcome>, ShiftError>
    where
        I: IntoIterator<Item = Frame>,
    {
        let mut outcomes = Vec::new();
        for frame in frames {
            outcomes.push(self.process_frame(&frame)?);
        }
        Ok(outcomes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::characterize::characterize;
    use shift_models::{ModelId, ModelZoo, ResponseModel};
    use shift_soc::{AcceleratorId, Platform};
    use shift_video::{CharacterizationDataset, Scenario};

    fn runtime(config: ShiftConfig) -> ShiftRuntime {
        let engine = ExecutionEngine::new(
            Platform::xavier_nx_with_oak(),
            ModelZoo::standard(),
            ResponseModel::new(6),
        );
        let characterization = characterize(&engine, &CharacterizationDataset::generate(200, 12));
        ShiftRuntime::new(engine, &characterization, config).expect("runtime builds")
    }

    #[test]
    fn runtime_processes_a_short_scenario() {
        let mut rt = runtime(ShiftConfig::paper_defaults());
        let outcomes = rt
            .run(Scenario::scenario_3().with_num_frames(40).stream())
            .unwrap();
        assert_eq!(outcomes.len(), 40);
        for o in &outcomes {
            assert!(o.latency_s > 0.0);
            assert!(o.energy_j > 0.0);
            assert!((0.0..=1.0).contains(&o.iou));
            assert_eq!(o.success, o.iou >= 0.5);
        }
        assert!(rt.pairs_used() >= 1);
    }

    #[test]
    fn first_frame_carries_the_initial_load_cost() {
        let mut rt = runtime(ShiftConfig::paper_defaults());
        let frames: Vec<_> = Scenario::scenario_3().with_num_frames(5).stream().collect();
        let first = rt.process_frame(&frames[0]).unwrap();
        let second = rt.process_frame(&frames[1]).unwrap();
        assert!(
            first.latency_s > second.latency_s,
            "first frame pays the initial model load ({} vs {})",
            first.latency_s,
            second.latency_s
        );
    }

    #[test]
    fn easy_scenario_settles_on_a_cheap_model() {
        // Scenario 3 is a close-range hover on a plain background: after the
        // initial frames SHIFT should migrate away from the expensive
        // YoloV7-on-GPU configuration.
        let mut rt = runtime(ShiftConfig::paper_defaults());
        let outcomes = rt
            .run(Scenario::scenario_3().with_num_frames(120).stream())
            .unwrap();
        let later = &outcomes[60..];
        let yolo_full_gpu = later
            .iter()
            .filter(|o| o.pair.model == ModelId::YoloV7 && o.pair.accelerator == AcceleratorId::Gpu)
            .count();
        assert!(
            yolo_full_gpu < later.len(),
            "SHIFT should not stay pinned to YoloV7-on-GPU on an easy scenario"
        );
        let mean_energy: f64 = later.iter().map(|o| o.energy_j).sum::<f64>() / later.len() as f64;
        assert!(
            mean_energy < 1.9,
            "steady-state energy should drop below the YoloV7-GPU cost, got {mean_energy}"
        );
    }

    #[test]
    fn accuracy_is_maintained_on_easy_scenarios() {
        let mut rt = runtime(ShiftConfig::paper_defaults());
        let outcomes = rt
            .run(Scenario::scenario_3().with_num_frames(150).stream())
            .unwrap();
        let success_rate =
            outcomes.iter().filter(|o| o.success).count() as f64 / outcomes.len() as f64;
        assert!(
            success_rate > 0.6,
            "easy scenario success rate too low: {success_rate}"
        );
    }

    #[test]
    fn swaps_are_counted_and_bounded() {
        let mut rt = runtime(ShiftConfig::paper_defaults());
        let outcomes = rt
            .run(Scenario::scenario_1().with_num_frames(200).stream())
            .unwrap();
        let swaps = outcomes.iter().filter(|o| o.swapped).count() as u64;
        assert_eq!(swaps, rt.swap_count());
        assert!(
            swaps < outcomes.len() as u64 / 2,
            "swapping every other frame would defeat the similarity gate"
        );
    }

    #[test]
    fn scheduler_overhead_is_charged_every_frame() {
        let config = ShiftConfig::paper_defaults();
        let overhead = config.scheduler_overhead_s;
        let mut rt = runtime(config);
        let outcomes = rt
            .run(Scenario::scenario_3().with_num_frames(10).stream())
            .unwrap();
        for o in outcomes {
            assert!(o.latency_s >= overhead);
        }
    }

    #[test]
    fn empty_characterization_is_rejected() {
        let engine = ExecutionEngine::new(
            Platform::xavier_nx_with_oak(),
            ModelZoo::standard(),
            ResponseModel::new(6),
        );
        let empty = Characterization {
            traits: Default::default(),
            samples: Vec::new(),
        };
        let err = ShiftRuntime::new(engine, &empty, ShiftConfig::paper_defaults()).unwrap_err();
        assert_eq!(err, ShiftError::EmptyCharacterization);
    }

    #[test]
    fn determinism_across_identical_runs() {
        let a = {
            let mut rt = runtime(ShiftConfig::paper_defaults());
            rt.run(Scenario::scenario_2().with_num_frames(80).stream())
                .unwrap()
        };
        let b = {
            let mut rt = runtime(ShiftConfig::paper_defaults());
            rt.run(Scenario::scenario_2().with_num_frames(80).stream())
                .unwrap()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn multi_accelerator_usage_emerges() {
        let mut rt = runtime(ShiftConfig::paper_defaults());
        let outcomes = rt
            .run(Scenario::scenario_1().with_num_frames(300).stream())
            .unwrap();
        let non_gpu = outcomes
            .iter()
            .filter(|o| o.pair.accelerator != AcceleratorId::Gpu)
            .count();
        assert!(
            non_gpu > 0,
            "SHIFT should route at least some frames off the GPU"
        );
    }
}
