//! The end-to-end SHIFT runtime: per-frame loop combining context detection,
//! scheduling, dynamic model loading and execution on the simulated SoC.
//!
//! The per-stream half of the loop (context detection, scheduling, momentum,
//! outcome bookkeeping) lives in [`StreamAgent`], so it can be driven either
//! by [`ShiftRuntime`] — one stream owning one engine — or by
//! [`FleetRuntime`](crate::fleet::FleetRuntime), which multiplexes many
//! agents over one shared engine. `ShiftRuntime` is the single-stream
//! special case.

use crate::characterize::Characterization;
use crate::config::ShiftConfig;
use crate::context::ContextDetector;
use crate::graph::ConfidenceGraph;
use crate::loader::DynamicModelLoader;
use crate::scheduler::{CandidatePair, Decision, Scheduler};
use crate::ShiftError;
use serde::{Deserialize, Serialize};
use shift_models::Detection;
use shift_soc::{ExecutionEngine, InferenceReport};
use shift_video::Frame;
use std::collections::BTreeSet;

/// Everything that happened while processing one frame.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrameOutcome {
    /// Index of the frame within its stream.
    pub frame_index: usize,
    /// The (model, accelerator) pair that executed the frame.
    pub pair: CandidatePair,
    /// The detection the model reported, if any.
    pub detection: Option<Detection>,
    /// The confidence of that detection (0 when nothing was detected).
    pub confidence: f64,
    /// IoU of the detection against ground truth (0 for misses).
    pub iou: f64,
    /// Whether the frame counts as a success (IoU >= 0.5).
    pub success: bool,
    /// End-to-end latency charged to the frame: scheduler overhead + any
    /// model-load time + inference latency, seconds.
    pub latency_s: f64,
    /// Energy charged to the frame, joules.
    pub energy_j: f64,
    /// Whether a model/accelerator swap (load) happened on this frame.
    pub swapped: bool,
    /// Whether a full re-scheduling pass ran on this frame.
    pub rescheduled: bool,
    /// The context-similarity score observed for this frame.
    pub similarity: f64,
}

/// The load cost (and swap flag) charged to one executed frame.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct LoadCharge {
    /// Model-load time charged to the frame, seconds.
    pub time_s: f64,
    /// Model-load energy charged to the frame, joules.
    pub energy_j: f64,
    /// Whether the frame performed a model/accelerator swap.
    pub swapped: bool,
}

/// The per-stream half of the SHIFT loop: context detection, scheduling and
/// outcome bookkeeping for **one** video stream, without owning an engine.
///
/// [`ShiftRuntime`] pairs one agent with its own [`ExecutionEngine`];
/// [`FleetRuntime`](crate::fleet::FleetRuntime) multiplexes many agents over
/// a single shared engine. A frame flows through an agent in two phases:
/// [`decide`](Self::decide) produces the scheduling decision, the driver
/// loads the model and runs inference on whatever engine it manages, and
/// [`complete`](Self::complete) folds the execution report back into the
/// agent's state and produces the [`FrameOutcome`].
#[derive(Debug, Clone)]
pub struct StreamAgent {
    scheduler: Scheduler,
    detector: ContextDetector,
    current: CandidatePair,
    last_confidence: f64,
    last_detection: Option<Detection>,
    pending_load_time_s: f64,
    pending_load_energy_j: f64,
    pairs_used: BTreeSet<CandidatePair>,
    swap_count: u64,
}

impl StreamAgent {
    /// Builds an agent from an offline characterization and a configuration.
    /// The initial pair is selected but **not** loaded — the driver decides
    /// when and on which engine to make it resident (see
    /// [`charge_pending_load`](Self::charge_pending_load)).
    ///
    /// # Errors
    ///
    /// Returns [`ShiftError::EmptyCharacterization`] when the
    /// characterization has no samples and [`ShiftError::NoCandidatePairs`]
    /// when no model can run on any allowed accelerator.
    pub fn new(
        characterization: &Characterization,
        config: ShiftConfig,
    ) -> Result<Self, ShiftError> {
        if characterization.is_empty() {
            return Err(ShiftError::EmptyCharacterization);
        }
        let graph = ConfidenceGraph::build(&characterization.samples, config.graph_config());
        let scheduler = Scheduler::new(config, characterization, graph)?;
        let current = scheduler.initial_pair();
        Ok(Self {
            scheduler,
            detector: ContextDetector::new(),
            current,
            last_confidence: 0.0,
            last_detection: None,
            pending_load_time_s: 0.0,
            pending_load_energy_j: 0.0,
            pairs_used: BTreeSet::new(),
            swap_count: 0,
        })
    }

    /// The pair currently selected for execution.
    pub fn current_pair(&self) -> CandidatePair {
        self.current
    }

    /// The scheduler (for inspection in tests and ablations).
    pub fn scheduler(&self) -> &Scheduler {
        &self.scheduler
    }

    /// The configuration the agent was built with.
    pub fn config(&self) -> &ShiftConfig {
        self.scheduler.config()
    }

    /// Number of model/accelerator swaps performed so far.
    pub fn swap_count(&self) -> u64 {
        self.swap_count
    }

    /// Distinct (model, accelerator) pairs used so far.
    pub fn pairs_used(&self) -> usize {
        self.pairs_used.len()
    }

    /// Adds a load cost to be charged to the next processed frame (used for
    /// the initial model pre-load, which happens before any frame exists).
    pub fn charge_pending_load(&mut self, time_s: f64, energy_j: f64) {
        self.pending_load_time_s += time_s;
        self.pending_load_energy_j += energy_j;
    }

    /// Takes (and clears) the pending load cost accumulated so far.
    pub fn take_pending_load(&mut self) -> (f64, f64) {
        (
            std::mem::take(&mut self.pending_load_time_s),
            std::mem::take(&mut self.pending_load_energy_j),
        )
    }

    /// Phase one of a frame: computes the context similarity against the
    /// previous frame and runs the scheduling heuristic.
    pub fn decide(&mut self, frame: &Frame) -> Decision {
        let similarity = self
            .detector
            .similarity(frame, self.last_detection.map(|d| d.bbox).as_ref());
        self.scheduler
            .schedule(self.current, self.last_confidence, similarity)
    }

    /// Phase two of a frame: folds the executed pair, the inference report
    /// and the charged load cost back into the agent and produces the
    /// [`FrameOutcome`]. `pair` is the pair that actually executed (the fleet
    /// may have downgraded the decision under memory pressure);
    /// `queue_wait_s` is any cross-stream queueing delay charged on top.
    pub fn complete(
        &mut self,
        frame: &Frame,
        pair: CandidatePair,
        decision: &Decision,
        report: &InferenceReport,
        load: LoadCharge,
        queue_wait_s: f64,
    ) -> FrameOutcome {
        if load.swapped {
            self.swap_count += 1;
        }
        self.current = pair;
        self.pairs_used.insert(pair);

        let detection = report.result.detection;
        let confidence = report.result.confidence();
        let iou = report.result.iou_against(frame.truth.as_ref());

        self.detector
            .update(frame, detection.as_ref().map(|d| &d.bbox));
        self.last_confidence = confidence;
        self.last_detection = detection;

        let config = self.scheduler.config();
        FrameOutcome {
            frame_index: frame.index,
            pair,
            detection,
            confidence,
            iou,
            success: iou >= 0.5,
            latency_s: queue_wait_s + config.scheduler_overhead_s + load.time_s + report.latency_s,
            energy_j: config.scheduler_overhead_energy_j() + load.energy_j + report.energy_j,
            swapped: load.swapped,
            rescheduled: decision.rescheduled,
            similarity: decision.similarity,
        }
    }
}

/// The SHIFT runtime.
///
/// Construction performs the *online-side* setup only: the confidence graph
/// is built from a pre-computed [`Characterization`], the scheduler and the
/// dynamic model loader are initialized, and the initial model is pre-loaded
/// onto its accelerator (charged to the first frame).
///
/// Internally the runtime is one [`StreamAgent`] bound to its own engine and
/// loader; [`FleetRuntime`](crate::fleet::FleetRuntime) composes many agents
/// over one shared engine.
///
/// See the crate-level example for end-to-end usage.
#[derive(Debug, Clone)]
pub struct ShiftRuntime {
    engine: ExecutionEngine,
    loader: DynamicModelLoader,
    agent: StreamAgent,
}

impl ShiftRuntime {
    /// Builds a runtime from an engine, an offline characterization and a
    /// configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ShiftError::EmptyCharacterization`] when the
    /// characterization has no samples and [`ShiftError::NoCandidatePairs`]
    /// when no model can run on any allowed accelerator.
    pub fn new(
        engine: ExecutionEngine,
        characterization: &Characterization,
        config: ShiftConfig,
    ) -> Result<Self, ShiftError> {
        let agent = StreamAgent::new(characterization, config)?;
        let mut runtime = Self {
            engine,
            loader: DynamicModelLoader::new(),
            agent,
        };
        // Make the initial model resident; its load cost is charged to the
        // first processed frame.
        let outcome = runtime
            .loader
            .ensure_loaded(&mut runtime.engine, runtime.agent.current_pair())
            .map_err(ShiftError::from)?;
        runtime
            .agent
            .charge_pending_load(outcome.load_time_s, outcome.load_energy_j);
        Ok(runtime)
    }

    /// The pair currently selected for execution.
    pub fn current_pair(&self) -> CandidatePair {
        self.agent.current_pair()
    }

    /// The scheduler (for inspection in tests and ablations).
    pub fn scheduler(&self) -> &Scheduler {
        self.agent.scheduler()
    }

    /// The execution engine (for inspecting telemetry).
    pub fn engine(&self) -> &ExecutionEngine {
        &self.engine
    }

    /// Number of model/accelerator swaps performed so far.
    pub fn swap_count(&self) -> u64 {
        self.agent.swap_count()
    }

    /// Number of full re-scheduling passes (Algorithm 1 decisions) performed
    /// so far. Frames where the NCC similarity gate kept the current model
    /// do not count, so on a stable scene this stays well below the frame
    /// count while a scene-cut burst drives it up.
    pub fn reschedule_count(&self) -> u64 {
        self.agent.scheduler().reschedule_count()
    }

    /// Distinct (model, accelerator) pairs used so far.
    pub fn pairs_used(&self) -> usize {
        self.agent.pairs_used()
    }

    /// Processes a single frame: schedule, (re)load if needed, run inference,
    /// update context history.
    ///
    /// # Errors
    ///
    /// Propagates loading and execution errors from the SoC simulator.
    pub fn process_frame(&mut self, frame: &Frame) -> Result<FrameOutcome, ShiftError> {
        // --- Context detection and scheduling. ---
        let decision = self.agent.decide(frame);

        // --- Dynamic model loading. ---
        let current = self.agent.current_pair();
        let (mut load_time, mut load_energy) = self.agent.take_pending_load();
        let mut swapped = false;
        if decision.pair != current
            || !self
                .engine
                .is_loaded(decision.pair.model, decision.pair.accelerator)
        {
            let outcome = self.loader.ensure_loaded(&mut self.engine, decision.pair)?;
            load_time += outcome.load_time_s;
            load_energy += outcome.load_energy_j;
            swapped = decision.pair != current || outcome.loaded;
        } else {
            self.loader.touch(decision.pair);
        }

        // --- Inference. ---
        let report =
            self.engine
                .run_inference(decision.pair.model, decision.pair.accelerator, frame)?;

        // --- Bookkeeping for the next frame. ---
        let load = LoadCharge {
            time_s: load_time,
            energy_j: load_energy,
            swapped,
        };
        Ok(self
            .agent
            .complete(frame, decision.pair, &decision, &report, load, 0.0))
    }

    /// Runs the runtime over an entire frame stream.
    ///
    /// # Errors
    ///
    /// Propagates the first error encountered while processing a frame.
    pub fn run<I>(&mut self, frames: I) -> Result<Vec<FrameOutcome>, ShiftError>
    where
        I: IntoIterator<Item = Frame>,
    {
        let mut outcomes = Vec::new();
        for frame in frames {
            outcomes.push(self.process_frame(&frame)?);
        }
        Ok(outcomes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::characterize::characterize;
    use shift_models::{ModelId, ModelZoo, ResponseModel};
    use shift_soc::{AcceleratorId, Platform};
    use shift_video::{CharacterizationDataset, Scenario};

    fn runtime(config: ShiftConfig) -> ShiftRuntime {
        let engine = ExecutionEngine::new(
            Platform::xavier_nx_with_oak(),
            ModelZoo::standard(),
            ResponseModel::new(6),
        );
        let characterization = characterize(&engine, &CharacterizationDataset::generate(200, 12));
        ShiftRuntime::new(engine, &characterization, config).expect("runtime builds")
    }

    #[test]
    fn runtime_processes_a_short_scenario() {
        let mut rt = runtime(ShiftConfig::paper_defaults());
        let outcomes = rt
            .run(Scenario::scenario_3().with_num_frames(40).stream())
            .unwrap();
        assert_eq!(outcomes.len(), 40);
        for o in &outcomes {
            assert!(o.latency_s > 0.0);
            assert!(o.energy_j > 0.0);
            assert!((0.0..=1.0).contains(&o.iou));
            assert_eq!(o.success, o.iou >= 0.5);
        }
        assert!(rt.pairs_used() >= 1);
    }

    #[test]
    fn first_frame_carries_the_initial_load_cost() {
        let mut rt = runtime(ShiftConfig::paper_defaults());
        let frames: Vec<_> = Scenario::scenario_3().with_num_frames(5).stream().collect();
        let first = rt.process_frame(&frames[0]).unwrap();
        let second = rt.process_frame(&frames[1]).unwrap();
        assert!(
            first.latency_s > second.latency_s,
            "first frame pays the initial model load ({} vs {})",
            first.latency_s,
            second.latency_s
        );
    }

    #[test]
    fn easy_scenario_settles_on_a_cheap_model() {
        // Scenario 3 is a close-range hover on a plain background: after the
        // initial frames SHIFT should migrate away from the expensive
        // YoloV7-on-GPU configuration.
        let mut rt = runtime(ShiftConfig::paper_defaults());
        let outcomes = rt
            .run(Scenario::scenario_3().with_num_frames(120).stream())
            .unwrap();
        let later = &outcomes[60..];
        let yolo_full_gpu = later
            .iter()
            .filter(|o| o.pair.model == ModelId::YoloV7 && o.pair.accelerator == AcceleratorId::Gpu)
            .count();
        assert!(
            yolo_full_gpu < later.len(),
            "SHIFT should not stay pinned to YoloV7-on-GPU on an easy scenario"
        );
        let mean_energy: f64 = later.iter().map(|o| o.energy_j).sum::<f64>() / later.len() as f64;
        assert!(
            mean_energy < 1.9,
            "steady-state energy should drop below the YoloV7-GPU cost, got {mean_energy}"
        );
    }

    #[test]
    fn accuracy_is_maintained_on_easy_scenarios() {
        let mut rt = runtime(ShiftConfig::paper_defaults());
        let outcomes = rt
            .run(Scenario::scenario_3().with_num_frames(150).stream())
            .unwrap();
        let success_rate =
            outcomes.iter().filter(|o| o.success).count() as f64 / outcomes.len() as f64;
        assert!(
            success_rate > 0.6,
            "easy scenario success rate too low: {success_rate}"
        );
    }

    #[test]
    fn swaps_are_counted_and_bounded() {
        let mut rt = runtime(ShiftConfig::paper_defaults());
        let outcomes = rt
            .run(Scenario::scenario_1().with_num_frames(200).stream())
            .unwrap();
        let swaps = outcomes.iter().filter(|o| o.swapped).count() as u64;
        assert_eq!(swaps, rt.swap_count());
        assert!(
            swaps < outcomes.len() as u64 / 2,
            "swapping every other frame would defeat the similarity gate"
        );
    }

    #[test]
    fn scheduler_overhead_is_charged_every_frame() {
        let config = ShiftConfig::paper_defaults();
        let overhead = config.scheduler_overhead_s;
        let mut rt = runtime(config);
        let outcomes = rt
            .run(Scenario::scenario_3().with_num_frames(10).stream())
            .unwrap();
        for o in outcomes {
            assert!(o.latency_s >= overhead);
        }
    }

    #[test]
    fn empty_characterization_is_rejected() {
        let engine = ExecutionEngine::new(
            Platform::xavier_nx_with_oak(),
            ModelZoo::standard(),
            ResponseModel::new(6),
        );
        let empty = Characterization {
            traits: Default::default(),
            samples: Vec::new(),
        };
        let err = ShiftRuntime::new(engine, &empty, ShiftConfig::paper_defaults()).unwrap_err();
        assert_eq!(err, ShiftError::EmptyCharacterization);
    }

    #[test]
    fn determinism_across_identical_runs() {
        let a = {
            let mut rt = runtime(ShiftConfig::paper_defaults());
            rt.run(Scenario::scenario_2().with_num_frames(80).stream())
                .unwrap()
        };
        let b = {
            let mut rt = runtime(ShiftConfig::paper_defaults());
            rt.run(Scenario::scenario_2().with_num_frames(80).stream())
                .unwrap()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn multi_accelerator_usage_emerges() {
        let mut rt = runtime(ShiftConfig::paper_defaults());
        let outcomes = rt
            .run(Scenario::scenario_1().with_num_frames(300).stream())
            .unwrap();
        let non_gpu = outcomes
            .iter()
            .filter(|o| o.pair.accelerator != AcceleratorId::Gpu)
            .count();
        assert!(
            non_gpu > 0,
            "SHIFT should route at least some frames off the GPU"
        );
    }
}
