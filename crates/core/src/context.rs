//! Runtime context-change detection (paper §III-B, "Context Detection").
//!
//! The scheduler does not extract expensive semantic features from frames.
//! It computes the normalized cross-correlation between the previous and
//! current frame and between the crops under the previous and current
//! bounding boxes, and takes the minimum. A low similarity means the input
//! stream changed significantly and the current model choice should be
//! reconsidered.

use shift_video::{ncc, BoundingBox, Frame, GrayImage, RegionNcc};

/// Tracks the previous frame and detection and produces the similarity score
/// used by the scheduler's "keep the current model" gate.
///
/// The detector holds the previous frame through [`GrayImage`]'s shared
/// (`Arc`-backed) pixel buffer, so [`update`](Self::update) is O(1) instead
/// of a deep per-frame copy, and the image's cached NCC moments stay warm
/// across the two frames each one participates in. The bounding-box term
/// runs through a reusable [`RegionNcc`] scratch, which is why
/// [`similarity`](Self::similarity) takes `&mut self`.
///
/// ```
/// use shift_core::ContextDetector;
/// use shift_video::{BoundingBox, Scenario};
///
/// let scenario = Scenario::scenario_3().with_num_frames(3);
/// let frames: Vec<_> = scenario.stream().collect();
/// let mut detector = ContextDetector::new();
/// // The first frame has no history: similarity is 0, forcing a scheduling pass.
/// let bbox = frames[0].truth.unwrap();
/// assert_eq!(detector.similarity(&frames[0], Some(&bbox)), 0.0);
/// detector.update(&frames[0], Some(&bbox));
/// // Consecutive frames of a hover scenario are nearly identical.
/// let next_bbox = frames[1].truth.unwrap();
/// assert!(detector.similarity(&frames[1], Some(&next_bbox)) > 0.8);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ContextDetector {
    last_image: Option<GrayImage>,
    last_bbox: Option<BoundingBox>,
    region: RegionNcc,
}

impl ContextDetector {
    /// Creates a detector with no history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Similarity between the remembered state and (`frame`, `bbox`):
    /// `min(NCC(last image, image), NCC(last bbox crop, bbox crop))`.
    ///
    /// Returns `0.0` when there is no history yet (first frame) or when
    /// either the previous or current detection is missing — both situations
    /// should trigger a scheduling pass.
    ///
    /// # Panics
    ///
    /// In debug builds, panics when `frame`'s dimensions differ from the
    /// remembered frame's. A stream's dimensions never legitimately change
    /// mid-video, so a mismatch is always a wiring bug in the driver; in
    /// release builds the NCC term falls back to `0.0`, which keeps the
    /// pipeline running but reads as a *permanent* scene cut — a full
    /// re-scheduling pass every frame, thrashing the shared loader — which
    /// is exactly why the bug is surfaced loudly here instead.
    pub fn similarity(&mut self, frame: &Frame, bbox: Option<&BoundingBox>) -> f64 {
        let Some(last_image) = &self.last_image else {
            return 0.0;
        };
        debug_assert!(
            last_image.width() == frame.image.width()
                && last_image.height() == frame.image.height(),
            "frame dimensions changed mid-stream ({}x{} -> {}x{}): \
             the context detector is wired to the wrong stream",
            last_image.width(),
            last_image.height(),
            frame.image.width(),
            frame.image.height(),
        );
        let image_ncc = ncc(last_image, &frame.image).unwrap_or(0.0);
        let bbox_ncc = match (&self.last_bbox, bbox) {
            (Some(prev), Some(current)) => {
                self.region
                    .ncc_regions(last_image, prev, &frame.image, current)
            }
            _ => 0.0,
        };
        // Both terms are clamped to [-1, 1] at the source (`ncc` clamps its
        // quotient; the degenerate and missing-box cases yield 0 or 1), an
        // invariant locked by the fast-path property suite — no re-clamp.
        image_ncc.min(bbox_ncc)
    }

    /// Remembers `frame` and the detection produced on it for the next
    /// similarity query. O(1): the pixel buffer is shared, not copied.
    pub fn update(&mut self, frame: &Frame, bbox: Option<&BoundingBox>) {
        self.last_image = Some(frame.image.clone());
        self.last_bbox = bbox.copied();
    }

    /// Whether the detector has seen at least one frame.
    pub fn has_history(&self) -> bool {
        self.last_image.is_some()
    }

    /// Clears the history (used when the pipeline restarts).
    pub fn reset(&mut self) {
        self.last_image = None;
        self.last_bbox = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shift_video::Scenario;

    #[test]
    fn first_frame_has_zero_similarity() {
        let frame = Scenario::scenario_3().stream().next().unwrap();
        let mut detector = ContextDetector::new();
        assert_eq!(detector.similarity(&frame, frame.truth.as_ref()), 0.0);
        assert!(!detector.has_history());
    }

    #[test]
    fn consecutive_hover_frames_are_similar() {
        let frames: Vec<_> = Scenario::scenario_3().with_num_frames(4).stream().collect();
        let mut detector = ContextDetector::new();
        detector.update(&frames[0], frames[0].truth.as_ref());
        let s = detector.similarity(&frames[1], frames[1].truth.as_ref());
        assert!(s > 0.8, "hover frames should be similar, got {s}");
    }

    #[test]
    fn background_change_drops_similarity() {
        // Scenario 1 crosses background boundaries; compare similarity within
        // a segment against similarity across the first boundary (at ~3% of
        // the video). Camera shake is disabled so the comparison isolates the
        // background change itself.
        let scenario = Scenario::scenario_1().with_camera_shake(0.0);
        let stream = scenario.stream();
        let boundary = (0.03 * scenario.num_frames() as f64) as usize;
        let within_a = stream.frame_at(boundary + 50).unwrap();
        let within_b = stream.frame_at(boundary + 51).unwrap();
        let before = stream.frame_at(boundary.saturating_sub(1)).unwrap();
        let after = stream.frame_at(boundary + 1).unwrap();

        let mut detector = ContextDetector::new();
        detector.update(&within_a, within_a.truth.as_ref());
        let same_segment = detector.similarity(&within_b, within_b.truth.as_ref());

        let mut detector = ContextDetector::new();
        detector.update(&before, before.truth.as_ref());
        let across_boundary = detector.similarity(&after, after.truth.as_ref());

        assert!(
            same_segment > across_boundary,
            "crossing a background boundary should lower similarity \
             ({same_segment} vs {across_boundary})"
        );
    }

    #[test]
    fn missing_detection_forces_low_similarity() {
        let frames: Vec<_> = Scenario::scenario_3().with_num_frames(3).stream().collect();
        let mut detector = ContextDetector::new();
        detector.update(&frames[0], frames[0].truth.as_ref());
        let s = detector.similarity(&frames[1], None);
        assert_eq!(s, 0.0, "no current detection -> bbox term is 0 -> min is 0");
    }

    #[test]
    fn reset_clears_history() {
        let frame = Scenario::scenario_3().stream().next().unwrap();
        let mut detector = ContextDetector::new();
        detector.update(&frame, frame.truth.as_ref());
        assert!(detector.has_history());
        detector.reset();
        assert!(!detector.has_history());
        assert_eq!(detector.similarity(&frame, frame.truth.as_ref()), 0.0);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "dimensions changed mid-stream")]
    fn mismatched_frame_dimensions_panic_in_debug() {
        // A stream's dimensions never legitimately change; feeding a
        // detector frames of two different sizes is a wiring bug that the
        // debug assertion at this boundary must surface (release builds
        // fall back to similarity 0.0 — a permanent scene cut — instead of
        // silently masking the `DimensionMismatch`).
        use shift_video::{FrameContext, GrayImage};
        let small = Frame {
            index: 0,
            image: GrayImage::new(16, 16),
            truth: None,
            context: FrameContext::easy(),
        };
        let large = Frame {
            index: 1,
            image: GrayImage::new(32, 32),
            truth: None,
            context: FrameContext::easy(),
        };
        let mut detector = ContextDetector::new();
        detector.update(&small, None);
        let _ = detector.similarity(&large, None);
    }

    #[test]
    fn similarity_is_bounded() {
        let frames: Vec<_> = Scenario::scenario_5()
            .with_num_frames(30)
            .stream()
            .collect();
        let mut detector = ContextDetector::new();
        for frame in &frames {
            let s = detector.similarity(frame, frame.truth.as_ref());
            assert!((-1.0..=1.0).contains(&s));
            detector.update(frame, frame.truth.as_ref());
        }
    }
}
