//! Deterministic discrete-event scheduling for the fleet runtime.
//!
//! The lockstep fleet loop touches every stream on every tick: admission
//! scans all N streams even when most of them are drained or waiting, and
//! scripted faults are polled once per frame whether or not an edge is due.
//! This module provides the alternative backbone: a priority queue of typed
//! events ([`EventQueue`]) that the event-driven [`FleetRuntime`](crate::fleet::FleetRuntime)
//! pops in a
//! **total, deterministic order**, so that only streams with work pending
//! cost anything and fault edges fire exactly when scripted.
//!
//! # Ordering contract
//!
//! Events are ordered by [`EventKey`] — the lexicographic tuple
//!
//! ```text
//! (time, event-kind rank, stream id, sequence number)
//! ```
//!
//! * `time` — the fleet's discrete clock (frames admitted so far). The fleet
//!   deliberately keys events on this logical tick rather than on virtual
//!   seconds: admission order is decided by the fairness policy over the
//!   *live* occupancy/lag state, so replaying the lockstep tick order is
//!   what makes the two execution modes bit-identical (see `fleet.rs`).
//! * `rank` — [`EventKind::rank`]: fault edges fire before frame work at the
//!   same tick (matching the lockstep loop, which advances the injector
//!   before admission), session departures and arrivals land next (detach
//!   frees capacity before the same tick's attach is admission-checked),
//!   and within one frame the lifecycle runs
//!   arrival → load-complete → inference-complete.
//! * `stream` — lower stream index first, mirroring the lockstep tie-break.
//! * `seq` — a queue-assigned monotonic sequence number, so two events that
//!   tie on everything else pop in insertion order (FIFO). This makes pop
//!   order *total*: no two events ever compare equal.
//!
//! The queue itself is pure state — no clocks, no randomness — so replaying
//! the same schedule calls yields a byte-identical drain order, which
//! `tests/property_event_queue.rs` locks in.

use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// How the fleet executes its streams.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExecutionMode {
    /// The original loop: every step polls the fault injector and scans all
    /// streams for admission. Kept as the differential-testing oracle.
    Lockstep,
    /// The discrete-event loop: fault edges are pre-scheduled, admission
    /// scans only the ready set, and each frame's lifecycle flows through
    /// the [`EventQueue`]. Bit-identical outcomes to [`Lockstep`], at
    /// O(active streams) per step.
    ///
    /// [`Lockstep`]: ExecutionMode::Lockstep
    #[default]
    EventDriven,
}

/// The kinds of events the fleet schedules, in rank order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventKind {
    /// A scripted fault or recovery edge is due (rank 0: platform state
    /// changes land before any frame work at the same tick).
    FaultEdge,
    /// A session leaves the fleet (rank 1: departures free capacity before
    /// the same tick's arrivals are admission-checked).
    SessionDetach,
    /// A session asks to join the fleet (rank 2: admission control sees the
    /// post-detach state but runs before any frame work).
    SessionAttach,
    /// A stream's next frame is admitted (rank 3).
    FrameArrival,
    /// The frame's model load (or resident fast path) finished; inference
    /// may start (rank 4).
    LoadComplete,
    /// The frame's inference finished; the outcome can be committed
    /// (rank 5).
    InferenceComplete,
}

impl EventKind {
    /// All kinds, in rank order.
    pub const ALL: [EventKind; 6] = [
        EventKind::FaultEdge,
        EventKind::SessionDetach,
        EventKind::SessionAttach,
        EventKind::FrameArrival,
        EventKind::LoadComplete,
        EventKind::InferenceComplete,
    ];

    /// The kind's position in the same-tick firing order.
    pub const fn rank(self) -> u8 {
        match self {
            EventKind::FaultEdge => 0,
            EventKind::SessionDetach => 1,
            EventKind::SessionAttach => 2,
            EventKind::FrameArrival => 3,
            EventKind::LoadComplete => 4,
            EventKind::InferenceComplete => 5,
        }
    }

    /// Stable lowercase label (used in trace CSV rows).
    pub const fn label(self) -> &'static str {
        match self {
            EventKind::FaultEdge => "fault_edge",
            EventKind::SessionDetach => "session_detach",
            EventKind::SessionAttach => "session_attach",
            EventKind::FrameArrival => "frame_arrival",
            EventKind::LoadComplete => "load_complete",
            EventKind::InferenceComplete => "inference_complete",
        }
    }
}

/// The total-order key events pop in: `(time, rank, stream, seq)`,
/// lexicographic (the derived `Ord` compares fields in declaration order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct EventKey {
    /// Discrete time the event is due at.
    pub time: u64,
    /// [`EventKind::rank`] of the event's kind.
    pub rank: u8,
    /// Stream the event belongs to (0 for fleet-wide events).
    pub stream: u32,
    /// Queue-assigned insertion sequence number — the final, always-unique
    /// tie-break.
    pub seq: u64,
}

/// One scheduled event: its key, kind and payload.
#[derive(Debug, Clone)]
pub struct Event<P> {
    /// The total-order key the event popped under.
    pub key: EventKey,
    /// The event's kind (also encoded in `key.rank`).
    pub kind: EventKind,
    /// The caller's payload.
    pub payload: P,
}

/// Internal heap slot; ordering delegates to the key alone so payloads need
/// no `Ord`.
#[derive(Debug, Clone)]
struct Slot<P> {
    key: EventKey,
    kind: EventKind,
    payload: P,
}

impl<P> PartialEq for Slot<P> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}

impl<P> Eq for Slot<P> {}

impl<P> PartialOrd for Slot<P> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<P> Ord for Slot<P> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Min-heap on the key: the smallest key pops first.
        Reverse(self.key).cmp(&Reverse(other.key))
    }
}

/// A deterministic priority queue of typed events.
///
/// Pop order is the total order documented on [`EventKey`]; the queue
/// assigns `seq` itself, so identical `(time, kind, stream)` schedules drain
/// FIFO and replaying the same schedule sequence is byte-identical.
///
/// ```
/// use shift_core::des::{EventKind, EventQueue};
///
/// let mut queue = EventQueue::new();
/// queue.schedule(3, EventKind::FrameArrival, 1, "late");
/// queue.schedule(0, EventKind::FrameArrival, 2, "early-hi-stream");
/// queue.schedule(0, EventKind::FaultEdge, 0, "edge");
/// queue.schedule(0, EventKind::FrameArrival, 2, "early-second");
/// let order: Vec<&str> = std::iter::from_fn(|| queue.pop().map(|e| e.payload)).collect();
/// assert_eq!(order, ["edge", "early-hi-stream", "early-second", "late"]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct EventQueue<P> {
    heap: BinaryHeap<Slot<P>>,
    next_seq: u64,
}

impl<P> EventQueue<P> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `payload` as a `kind` event for `stream` at `time`,
    /// returning the assigned key (with its unique `seq`).
    pub fn schedule(&mut self, time: u64, kind: EventKind, stream: u32, payload: P) -> EventKey {
        let key = EventKey {
            time,
            rank: kind.rank(),
            stream,
            seq: self.next_seq,
        };
        self.next_seq += 1;
        self.heap.push(Slot { key, kind, payload });
        key
    }

    /// The key of the next event to pop, without popping it.
    pub fn peek(&self) -> Option<&EventKey> {
        self.heap.peek().map(|slot| &slot.key)
    }

    /// Pops the smallest-keyed event.
    pub fn pop(&mut self) -> Option<Event<P>> {
        self.heap.pop().map(|slot| Event {
            key: slot.key,
            kind: slot.kind,
            payload: slot.payload,
        })
    }

    /// Drops every pending event. The sequence counter is *not* reset, so
    /// keys stay unique across a clear.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

/// One entry of the optional fleet event trace: which lifecycle event fired,
/// on which tick, for which stream, and at what virtual time.
///
/// The virtual stamps reconstruct the frame's latency accounting:
/// `InferenceComplete.at_s - FrameArrival.at_s` is exactly the frame's
/// end-to-end `latency_s`, and `InferenceComplete.at_s - LoadComplete.at_s`
/// is exactly the inference kernel's `latency_s` (see
/// `shift_metrics::trace` for the CSV surface).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Discrete tick (frames admitted before this one) the event fired on.
    pub tick: u64,
    /// Which lifecycle event fired.
    pub kind: EventKind,
    /// The stream the event belongs to.
    pub stream: usize,
    /// Virtual time of the event, seconds.
    pub at_s: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_follow_the_documented_order() {
        let ranks: Vec<u8> = EventKind::ALL.iter().map(|k| k.rank()).collect();
        assert_eq!(ranks, [0, 1, 2, 3, 4, 5]);
        assert_eq!(EventKind::FaultEdge.label(), "fault_edge");
        assert_eq!(EventKind::SessionDetach.label(), "session_detach");
        assert_eq!(EventKind::SessionAttach.label(), "session_attach");
    }

    #[test]
    fn key_order_is_lexicographic() {
        let base = EventKey {
            time: 5,
            rank: 1,
            stream: 2,
            seq: 7,
        };
        assert!(EventKey { time: 4, ..base } < base);
        assert!(EventKey { rank: 0, ..base } < base);
        assert!(EventKey { stream: 1, ..base } < base);
        assert!(EventKey { seq: 6, ..base } < base);
        assert!(
            EventKey {
                time: 6,
                rank: 0,
                stream: 0,
                seq: 0
            } > base
        );
    }

    #[test]
    fn pop_is_globally_ordered_and_fifo_on_full_ties() {
        let mut queue = EventQueue::new();
        queue.schedule(1, EventKind::InferenceComplete, 0, "d");
        queue.schedule(0, EventKind::LoadComplete, 3, "c");
        queue.schedule(0, EventKind::LoadComplete, 1, "a1");
        queue.schedule(0, EventKind::LoadComplete, 1, "a2");
        queue.schedule(0, EventKind::FaultEdge, 9, "b");
        let drained: Vec<&str> = std::iter::from_fn(|| queue.pop().map(|e| e.payload)).collect();
        assert_eq!(drained, ["b", "a1", "a2", "c", "d"]);
        assert!(queue.is_empty());
    }

    #[test]
    fn peek_matches_pop_and_len_tracks() {
        let mut queue = EventQueue::new();
        assert!(queue.peek().is_none());
        queue.schedule(2, EventKind::FrameArrival, 0, ());
        queue.schedule(1, EventKind::FrameArrival, 0, ());
        assert_eq!(queue.len(), 2);
        let peeked = *queue.peek().unwrap();
        let popped = queue.pop().unwrap();
        assert_eq!(peeked, popped.key);
        assert_eq!(popped.key.time, 1);
        assert_eq!(queue.len(), 1);
    }

    #[test]
    fn clear_keeps_sequence_numbers_unique() {
        let mut queue = EventQueue::new();
        let first = queue.schedule(0, EventKind::FaultEdge, 0, ());
        queue.clear();
        let second = queue.schedule(0, EventKind::FaultEdge, 0, ());
        assert_eq!(queue.len(), 1);
        assert!(second.seq > first.seq, "seq survives clear");
    }
}
