//! Offline stub of `criterion`.
//!
//! The build environment has no crates.io access, so this crate implements
//! the subset of the Criterion.rs API the `shift-bench` targets use:
//! `Criterion` (with `warm_up_time` / `measurement_time` / `sample_size`),
//! `benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `Bencher::iter`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Measurement is deliberately simple: each sample times `iters_per_sample`
//! closure invocations with [`std::time::Instant`] and the harness reports
//! the min / mean / max per-iteration time. There is no statistical analysis,
//! no HTML report and no saved baselines — swap the real `criterion` back in
//! (delete `vendor/criterion`, use crates.io) when the environment allows.
//!
//! When invoked with `--test` (as `cargo test --benches` does for
//! `harness = false` targets), every benchmark body runs exactly once so the
//! suite stays fast.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], mirroring `criterion::black_box`.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A compound id made of a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id that is just the parameter value (`criterion::BenchmarkId::from_parameter`).
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(id: &str) -> Self {
        Self { id: id.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        Self { id }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: usize,
    iters_per_sample: u64,
    test_mode: bool,
    report: Option<TimingReport>,
}

struct TimingReport {
    min: Duration,
    mean: Duration,
    max: Duration,
}

impl Bencher {
    /// Times `routine`, running it repeatedly and recording per-iteration cost.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            black_box(routine());
            return;
        }
        let mut min = Duration::MAX;
        let mut max = Duration::ZERO;
        let mut total = Duration::ZERO;
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            let elapsed = start.elapsed() / self.iters_per_sample as u32;
            min = min.min(elapsed);
            max = max.max(elapsed);
            total += elapsed;
        }
        self.report = Some(TimingReport {
            min,
            mean: total / self.samples as u32,
            max,
        });
    }
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Self {
            sample_size: 10,
            warm_up_time: Duration::from_millis(500),
            measurement_time: Duration::from_secs(2),
            test_mode,
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up duration (accepted for API compatibility; the stub
    /// runs a single untimed iteration as warm-up instead).
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the measurement budget used to pick the per-sample iteration
    /// count.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
            measurement_time: None,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let (sample_size, measurement_time) = (self.sample_size, self.measurement_time);
        self.run_one(&id.into().id, sample_size, measurement_time, f);
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(
        &mut self,
        label: &str,
        sample_size: usize,
        measurement_time: Duration,
        mut f: F,
    ) {
        let mut bencher = Bencher {
            samples: sample_size,
            iters_per_sample: self.calibrate(&mut f, sample_size, measurement_time),
            test_mode: self.test_mode,
            report: None,
        };
        f(&mut bencher);
        match bencher.report {
            Some(r) if !self.test_mode => println!(
                "{label:<60} time: [{} {} {}]",
                fmt_duration(r.min),
                fmt_duration(r.mean),
                fmt_duration(r.max),
            ),
            _ => println!("{label:<60} ok (test mode)"),
        }
    }

    /// One untimed warm-up pass that also picks how many iterations fit in
    /// the measurement budget, so fast routines are timed in batches.
    fn calibrate<F: FnMut(&mut Bencher)>(
        &mut self,
        f: &mut F,
        sample_size: usize,
        measurement_time: Duration,
    ) -> u64 {
        if self.test_mode {
            return 1;
        }
        let mut probe = Bencher {
            samples: 1,
            iters_per_sample: 1,
            test_mode: false,
            report: None,
        };
        f(&mut probe);
        let once = probe
            .report
            .map(|r| r.mean)
            .unwrap_or(Duration::from_micros(1))
            .max(Duration::from_nanos(1));
        let budget = measurement_time.max(Duration::from_millis(1));
        let per_sample = budget / sample_size.max(1) as u32;
        (per_sample.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    measurement_time: Option<Duration>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Overrides the measurement budget for benchmarks in this group (the
    /// override is group-scoped, as in real criterion).
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = Some(d);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into().id);
        let sample_size = self.sample_size.unwrap_or(self.criterion.sample_size);
        let measurement_time = self
            .measurement_time
            .unwrap_or(self.criterion.measurement_time);
        self.criterion
            .run_one(&label, sample_size, measurement_time, f);
        self
    }

    /// Runs one benchmark that borrows a setup value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group. (The stub keeps no per-group state to flush.)
    pub fn finish(self) {}
}

/// Defines a benchmark group function, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Defines the benchmark binary's `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.3} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.3} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.3} s", nanos as f64 / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion {
            sample_size: 3,
            warm_up_time: Duration::from_millis(1),
            measurement_time: Duration::from_millis(5),
            test_mode: false,
        };
        let mut runs = 0u64;
        c.bench_function("smoke", |b| b.iter(|| runs += 1));
        assert!(runs > 0);
    }

    #[test]
    fn group_overrides_sample_size() {
        let mut c = Criterion {
            sample_size: 50,
            warm_up_time: Duration::from_millis(1),
            measurement_time: Duration::from_millis(2),
            test_mode: true,
        };
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        let mut runs = 0u64;
        group.bench_with_input(BenchmarkId::from_parameter(7), &3u64, |b, &x| {
            b.iter(|| runs += x)
        });
        group.finish();
        assert_eq!(runs, 3, "test mode runs the body exactly once");
    }
}
