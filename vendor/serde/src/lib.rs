//! Offline stub of the `serde` facade.
//!
//! The build environment for this repository has no access to crates.io, so
//! the workspace vendors a minimal stand-in: the two derive macros expand to
//! nothing. No code in the workspace consumes the `Serialize`/`Deserialize`
//! *traits* (there is no `serde_json`, and no generic bounds on them), so the
//! derives only need to parse — they exist to mark which types are intended
//! to be wire-serializable once the real `serde` can be swapped back in by
//! deleting `vendor/serde` and pointing the workspace dependency at crates.io.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
