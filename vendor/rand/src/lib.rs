//! Offline stub of `rand` 0.8.
//!
//! The build environment has no crates.io access, so this crate provides the
//! exact API subset the workspace uses — `rngs::StdRng`, `SeedableRng::
//! seed_from_u64`, `Rng::gen_range` over half-open ranges and `Rng::gen_bool`
//! — backed by SplitMix64. Determinism per `(seed, call sequence)` is all the
//! simulation needs; the stream is *not* bit-compatible with the real
//! `rand::rngs::StdRng` (ChaCha12), so swapping the real crate back in will
//! shift sampled values (but not any invariant the test suite checks).

use std::ops::Range;

/// A random number generator seedable from a `u64`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a half-open `Range`.
pub trait SampleUniform: PartialOrd + Copy {
    /// Draws a value in `[low, high)` using the given generator.
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

impl SampleUniform for f64 {
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        let unit = rng.next_unit_f64();
        // The lerp can round up to exactly `end` for narrow spans; clamp to
        // the largest value below it so the half-open contract holds.
        (range.start + unit * (range.end - range.start)).min(range.end.next_down())
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        let unit = rng.next_unit_f64() as f32;
        (range.start + unit * (range.end - range.start)).min(range.end.next_down())
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                // i128 arithmetic so signed ranges (and spans wider than the
                // type's positive half) can't overflow.
                let span = ((range.end as i128) - (range.start as i128)) as u64;
                ((range.start as i128) + (rng.next_u64() % span) as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The subset of the `rand::Rng` interface used by this workspace.
pub trait Rng {
    /// Returns the next raw 64 bits from the generator.
    fn next_u64(&mut self) -> u64;

    /// Returns a uniform draw from `[0, 1)`.
    fn next_unit_f64(&mut self) -> f64 {
        // 53 high bits -> f64 mantissa, exactly the standard conversion.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Samples uniformly from the half-open range `[low, high)`.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics when `p` is not in `[0, 1]` (including NaN), matching the real
    /// `rand` 0.8 behaviour so a future swap-back cannot change semantics.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p = {p} is outside [0, 1]");
        self.next_unit_f64() < p
    }
}

/// Concrete generator types, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic 64-bit generator (SplitMix64).
    ///
    /// Stands in for `rand::rngs::StdRng`; same API, different (simpler)
    /// stream.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea & Flood 2014) — full-period, passes
            // BigCrush, and is tiny; ideal for a vendored stub.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(-0.25..0.75f64);
            assert!((-0.25..0.75).contains(&x));
            let n = rng.gen_range(3usize..9);
            assert!((3..9).contains(&n));
        }
    }

    #[test]
    fn float_ranges_stay_half_open_even_when_narrow() {
        let mut rng = StdRng::seed_from_u64(4);
        let (lo, hi) = (0.5f64, 0.5000000000000001f64);
        for _ in 0..1000 {
            let x = rng.gen_range(lo..hi);
            assert!(x >= lo && x < hi, "{x} escaped [{lo}, {hi})");
        }
    }

    #[test]
    fn gen_bool_edge_probabilities() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn gen_bool_rejects_nan() {
        StdRng::seed_from_u64(2).gen_bool(f64::NAN);
    }

    #[test]
    fn signed_ranges_do_not_overflow() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = rng.gen_range(-100i8..100);
            assert!((-100..100).contains(&x));
            let y = rng.gen_range(i64::MIN..i64::MAX);
            assert!((i64::MIN..i64::MAX).contains(&y));
        }
    }
}
