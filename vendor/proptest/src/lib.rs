//! Offline stub of `proptest`.
//!
//! The build environment has no crates.io access, so this crate implements
//! the subset of the proptest API the integration tests use:
//!
//! * the [`proptest!`] macro with an optional `#![proptest_config(...)]`
//!   header and `arg in strategy` bindings,
//! * range strategies over `f64` / `u64` / `usize` / `u8`, tuples of
//!   strategies (up to 4 elements) and [`collection::vec`],
//! * [`prop_assert!`] / [`prop_assert_eq!`],
//! * [`ProptestConfig::with_cases`].
//!
//! Unlike real proptest there is **no shrinking** and no persisted failure
//! seeds: each test runs `cases` deterministic samples derived from the test
//! name, so failures are reproducible across runs but are reported at the
//! sampled values rather than at a minimal counterexample.

use std::ops::Range;

pub use rand::rngs::StdRng as TestRng;
use rand::{Rng, SeedableRng};

/// Per-test configuration, mirroring `proptest::test_runner::ProptestConfig`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of sampled cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration that runs `cases` samples per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// A source of sampled values, mirroring `proptest::strategy::Strategy`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

impl Strategy for Range<u64> {
    type Value = u64;

    fn sample(&self, rng: &mut TestRng) -> u64 {
        rng.gen_range(self.clone())
    }
}

impl Strategy for Range<usize> {
    type Value = usize;

    fn sample(&self, rng: &mut TestRng) -> usize {
        rng.gen_range(self.clone())
    }
}

impl Strategy for Range<u8> {
    type Value = u8;

    fn sample(&self, rng: &mut TestRng) -> u8 {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for `Vec`s with element strategy `S` and a sampled length.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Produces vectors whose length is drawn from `len` and whose elements
    /// are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.len.is_empty() {
                self.len.start
            } else {
                rng.gen_range(self.len.clone())
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Glob import mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

/// Seeds the per-test generator from the test's name so each property gets a
/// distinct but reproducible sample stream.
pub fn rng_for_test(test_name: &str) -> TestRng {
    // FNV-1a over the test name: stable across runs and platforms.
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for byte in test_name.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    TestRng::seed_from_u64(hash)
}

/// Property assertion; panics (failing the test) when `cond` is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(, $($fmt:tt)+)?) => {
        assert!($cond $(, $($fmt)+)?)
    };
}

/// Property equality assertion; panics when the sides differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(, $($fmt:tt)+)?) => {
        assert_eq!($left, $right $(, $($fmt)+)?)
    };
}

/// Defines property tests, mirroring `proptest::proptest!`.
///
/// Each `fn name(arg in strategy, ...) { body }` item expands to a plain
/// `#[test]` that samples all arguments `cases` times and runs the body per
/// sample.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: munches one `fn` item at a time.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = $config:expr;) => {};
    (config = $config:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::rng_for_test(concat!(module_path!(), "::", stringify!($name)));
            for _case in 0..config.cases {
                $(let $arg = $crate::Strategy::sample(&($strategy), &mut rng);)+
                $body
            }
        }
        $crate::__proptest_items! { config = $config; $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Sampled ranges stay within bounds.
        #[test]
        fn ranges_stay_in_bounds(x in -2.0..3.0f64, n in 1usize..10) {
            prop_assert!((-2.0..3.0).contains(&x));
            prop_assert!((1..10).contains(&n));
        }

        /// Vec strategies honour the length range.
        #[test]
        fn vec_lengths_in_range(v in crate::collection::vec(0.0..1.0f64, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|e| (0.0..1.0).contains(e)));
        }

        /// Tuple strategies sample each element from its own range,
        /// including inside vec strategies.
        #[test]
        fn tuples_sample_elementwise(
            pair in (0usize..4, 10u64..20),
            v in crate::collection::vec((0usize..3, 0u8..10), 1..5),
        ) {
            prop_assert!((0..4).contains(&pair.0));
            prop_assert!((10..20).contains(&pair.1));
            prop_assert!(v.iter().all(|(a, b)| (0..3).contains(a) && (0..10).contains(b)));
        }
    }

    proptest! {
        /// The default config applies when no header is given.
        #[test]
        fn default_config_runs(seed in 0u64..5) {
            prop_assert!(seed < 5);
        }
    }

    #[test]
    fn rng_for_test_is_deterministic_and_name_sensitive() {
        use rand::Rng;
        let a = super::rng_for_test("a").next_u64();
        let a2 = super::rng_for_test("a").next_u64();
        let b = super::rng_for_test("b").next_u64();
        assert_eq!(a, a2);
        assert_ne!(a, b);
    }
}
